package energy

import (
	"math"
	"reflect"
	"testing"

	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/store"
)

// TestStoreLoadedCharIdentical is the bit-identity contract for
// persisted characterizations: an entry loaded from the store must be
// value-identical — netlist, activity, both reports — to a fresh
// characterization of the same stage and configuration.
func TestStoreLoadedCharIdentical(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []dsp.ArithConfig{dsp.Accurate(), ama5(8)}
	stages := []pantompkins.Stage{pantompkins.LPF, pantompkins.SQR}

	// Pass 1: populate the store through fresh characterizations.
	m := freshModel(t)
	AttachStore(st)
	for _, s := range stages {
		for _, cfg := range cfgs {
			if _, err := m.stageChar(s, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st.Stats().Puts == 0 {
		t.Fatalf("publish pass wrote nothing: %+v", st.Stats())
	}

	// Pass 2: reference characterizations with no store bound.
	DropCaches()
	if AttachedStore() != nil {
		t.Fatal("DropCaches left the energy store attached")
	}
	refs := make(map[string]*charEntry)
	for _, s := range stages {
		for _, cfg := range cfgs {
			e, err := m.stageChar(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			refs[s.String()+cfg.String()] = e
		}
	}

	// Pass 3: store-loaded entries, compared field by field.
	DropCaches()
	AttachStore(st)
	h0 := st.Stats().Hits
	for _, s := range stages {
		for _, cfg := range cfgs {
			got, err := m.stageChar(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := refs[s.String()+cfg.String()]
			if !reflect.DeepEqual(got.net, ref.net) {
				t.Fatalf("%v %v: store-loaded netlist differs from fresh", s, cfg)
			}
			if got.act.Vectors != ref.act.Vectors || len(got.act.PerCell) != len(ref.act.PerCell) {
				t.Fatalf("%v %v: activity shape differs", s, cfg)
			}
			for i := range got.act.PerCell {
				if math.Float64bits(got.act.PerCell[i]) != math.Float64bits(ref.act.PerCell[i]) {
					t.Fatalf("%v %v: activity[%d] differs bit-for-bit", s, cfg, i)
				}
			}
			if !reflect.DeepEqual(got.rep, ref.rep) || !reflect.DeepEqual(got.opt, ref.opt) {
				t.Fatalf("%v %v: store-loaded reports differ from fresh", s, cfg)
			}
		}
	}
	if want := h0 + int64(len(stages)*len(cfgs)); st.Stats().Hits != want {
		t.Fatalf("load pass: %d hits, want %d", st.Stats().Hits, want)
	}
	AttachStore(nil)
}

// TestStoreCharBadPayloadFallsBack plants an undecodable payload under
// a live characterization key: the loader must count the degradation
// and fall back to a fresh, correct characterization.
func TestStoreCharBadPayloadFallsBack(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := freshModel(t)

	// Reference energy, no store.
	ref, err := m.StageEnergy(pantompkins.DER, ama5(8))
	if err != nil {
		t.Fatal(err)
	}

	// Recover the exact store key by publishing once, then rebuild the
	// root with garbage under that key.
	DropCaches()
	AttachStore(st)
	if _, err := m.StageEnergy(pantompkins.DER, ama5(8)); err != nil {
		t.Fatal(err)
	}
	AttachStore(nil)

	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := charKey{
		stage:   pantompkins.DER,
		cfg:     canonicalStageCfg(ama5(8)),
		stim:    m.stim.hash[pantompkins.DER],
		stim2:   m.stim.hash2[pantompkins.DER],
		vectors: m.Vectors,
		warmup:  m.Warmup,
	}
	st2.Put(charStoreKey(key), []byte{0xde, 0xad})
	DropCaches()
	AttachStore(st2)
	got, err := m.StageEnergy(pantompkins.DER, ama5(8))
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("energy after bad-payload fallback %v, reference %v", got, ref)
	}
	if st2.Stats().Degraded == 0 {
		t.Fatalf("decode error not counted: %+v", st2.Stats())
	}
	AttachStore(nil)
}

// TestDropCachesDetachesCharStore is the energy-side regression test
// for the generation contract: DropCaches with a store attached must
// detach it so cold loops see zero store traffic, and re-attaching
// restores warm-store service.
func TestDropCachesDetachesCharStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := freshModel(t)
	AttachStore(st)
	if _, err := m.StageEnergy(pantompkins.SQR, ama5(8)); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Puts == 0 {
		t.Fatalf("warm-up publish: %+v", st.Stats())
	}
	gen := Generation()
	DropCaches()
	if AttachedStore() != nil {
		t.Fatal("store survived DropCaches")
	}
	if Generation() != gen+1 {
		t.Fatalf("generation %d, want %d", Generation(), gen+1)
	}
	before := st.Stats()
	for i := 0; i < 2; i++ {
		DropCaches()
		if _, err := m.StageEnergy(pantompkins.SQR, ama5(8)); err != nil {
			t.Fatal(err)
		}
	}
	after := st.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses || after.Puts != before.Puts {
		t.Fatalf("detached cold loop touched the store: %+v -> %+v", before, after)
	}
	DropCaches()
	AttachStore(st)
	if _, err := m.StageEnergy(pantompkins.SQR, ama5(8)); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Hits != after.Hits+1 {
		t.Fatalf("re-attached characterization did not hit the store: %+v", st.Stats())
	}
	AttachStore(nil)
}

// TestCharEntryCodecRoundTrip pins the canonical payload encoding:
// encode→decode→encode must be a fixed point (so equal entries always
// share one blob, and the fuzz no-false-positive property carries over
// to the energy payload schema).
func TestCharEntryCodecRoundTrip(t *testing.T) {
	m := freshModel(t)
	e, err := m.stageChar(pantompkins.LPF, ama5(16))
	if err != nil {
		t.Fatal(err)
	}
	b1 := encodeCharEntry(e)
	d, err := decodeCharEntry(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2 := encodeCharEntry(d)
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("charEntry encoding is not a round-trip fixed point")
	}
	if !reflect.DeepEqual(d.net, e.net) || !reflect.DeepEqual(d.rep, e.rep) || !reflect.DeepEqual(d.opt, e.opt) {
		t.Fatal("decoded charEntry differs from original")
	}
}
