package energy

// Energy characterizations are the dominant cold-start cost of the
// evaluation pipeline (the netlist simulation behind one stage's
// switching activity dwarfs every kernel table build), and they are
// pure functions of the charKey — stage, canonical arithmetic
// configuration, dual stimulus fingerprints and analysis window. This
// file binds the characterization cache to the content-addressed
// artifact store (package store) the same way kernel tables bind in
// arith/kernel/persist.go: AttachStore opts in, stageChar consults the
// store between the in-memory miss and the characterize() build and
// publishes after, and DropCaches detaches the binding (a drop means
// "forget everything"; a surviving binding would resurrect dropped
// entries and turn honest cold paths warm — re-attach explicitly for
// the warm-store regime).
//
// A payload serializes the whole immutable charEntry: the optimised
// stage netlist (cells, ports, net graph), the measured switching
// activity and both synthesis reports, in a canonical little-endian
// form (CellCounts keys sorted) so equal entries always encode to
// equal bytes. Decoding reconstructs an entry value-identical to a
// fresh characterization — the bit-identity tests in persist_test.go
// and the experiments' golden traces hold with the store on, off or
// half-corrupted. Any store error or undecodable payload demotes
// silently to the in-memory characterization path.

import (
	"sort"
	"sync"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/netlist"
	"github.com/xbiosip/xbiosip/internal/store"
	"github.com/xbiosip/xbiosip/internal/synth"
)

var storeBinding struct {
	sync.Mutex
	st  *store.Store
	gen uint64
}

// AttachStore binds the persistent artifact store to the global
// characterization cache: cold characterizations consult it first and
// publish into it. Attaching nil detaches. The binding does not
// survive DropCaches (see the file doc comment).
func AttachStore(s *store.Store) {
	storeBinding.Lock()
	storeBinding.st = s
	storeBinding.Unlock()
}

// AttachedStore returns the store currently bound to the
// characterization cache, or nil.
func AttachedStore() *store.Store {
	storeBinding.Lock()
	defer storeBinding.Unlock()
	return storeBinding.st
}

// Generation returns the characterization-cache generation: the number
// of DropCaches calls so far.
func Generation() uint64 {
	storeBinding.Lock()
	defer storeBinding.Unlock()
	return storeBinding.gen
}

func dropStoreBinding() {
	storeBinding.Lock()
	storeBinding.st = nil
	storeBinding.gen++
	storeBinding.Unlock()
}

func charStoreKey(k charKey) store.Key {
	var w store.Writer
	w.U32(uint32(k.stage))
	w.U32(uint32(k.cfg.LSBs))
	w.U8(uint8(k.cfg.Add))
	w.U8(uint8(k.cfg.Mul))
	w.U64(k.stim)
	w.U64(k.stim2)
	w.U32(uint32(k.vectors))
	w.U32(uint32(k.warmup))
	return store.NewKey(store.KindChar, w.Bytes())
}

func encodePorts(w *store.Writer, ports []netlist.Port) {
	w.U32(uint32(len(ports)))
	for _, p := range ports {
		w.Str(p.Name)
		w.U32(uint32(len(p.Bits)))
		for _, n := range p.Bits {
			w.U32(uint32(n))
		}
	}
}

func decodePorts(r *store.Reader) []netlist.Port {
	np := r.Count(2) // name length prefix is the cheapest per-port floor
	ports := make([]netlist.Port, 0, np)
	for i := 0; i < np; i++ {
		var p netlist.Port
		p.Name = r.Str()
		nb := r.Count(4)
		if r.Err() != nil {
			return nil
		}
		p.Bits = make(netlist.Bus, nb)
		for j := range p.Bits {
			p.Bits[j] = netlist.Net(r.U32())
		}
		ports = append(ports, p)
	}
	return ports
}

func encodeReport(w *store.Writer, rep synth.Report) {
	w.Str(rep.Name)
	w.U32(uint32(rep.NumCells))
	w.U32(uint32(rep.NumRegisters))
	w.F64(rep.Area)
	w.F64(rep.Power)
	w.F64(rep.Delay)
	w.F64(rep.Energy)
	keys := make([]string, 0, len(rep.CellCounts))
	for k := range rep.CellCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.Str(k)
		w.U32(uint32(rep.CellCounts[k]))
	}
}

func decodeReport(r *store.Reader) synth.Report {
	var rep synth.Report
	rep.Name = r.Str()
	rep.NumCells = int(r.U32())
	rep.NumRegisters = int(r.U32())
	rep.Area = r.F64()
	rep.Power = r.F64()
	rep.Delay = r.F64()
	rep.Energy = r.F64()
	nk := r.Count(5) // len-prefixed key + count
	rep.CellCounts = make(map[string]int, nk)
	for i := 0; i < nk; i++ {
		k := r.Str()
		v := int(r.U32())
		if r.Err() != nil {
			return synth.Report{}
		}
		rep.CellCounts[k] = v
	}
	return rep
}

func encodeCharEntry(e *charEntry) []byte {
	var w store.Writer
	n := e.net
	w.Str(n.Name)
	w.U32(uint32(n.NumNets))
	w.U32(uint32(len(n.Cells)))
	for i := range n.Cells {
		c := &n.Cells[i]
		w.U8(uint8(c.Kind))
		w.U8(uint8(c.Add))
		w.U8(uint8(c.Mul))
		w.U32(uint32(len(c.In)))
		for _, in := range c.In {
			w.U32(uint32(in))
		}
		w.U32(uint32(len(c.Out)))
		for _, out := range c.Out {
			w.U32(uint32(out))
		}
	}
	encodePorts(&w, n.Inputs)
	encodePorts(&w, n.Outputs)
	w.U32(uint32(e.act.Vectors))
	w.U32(uint32(len(e.act.PerCell)))
	for _, a := range e.act.PerCell {
		w.F64(a)
	}
	encodeReport(&w, e.rep)
	encodeReport(&w, e.opt)
	return w.Bytes()
}

// decodeCharEntry reconstructs a characterization entry from its
// canonical payload. The blob layer already guarantees the bytes are
// exactly what a publisher wrote (checksummed, key-verified), so this
// only has to parse defensively — every count is bounds-checked by the
// Reader, and any structural surprise returns an error instead of a
// panic.
func decodeCharEntry(payload []byte) (*charEntry, error) {
	r := store.NewReader(payload)
	n := &netlist.Netlist{}
	n.Name = r.Str()
	n.NumNets = int(r.U32())
	nc := r.Count(7) // kind+add+mul + two count words is the per-cell floor
	if r.Err() != nil {
		return nil, store.ErrMalformed
	}
	n.Cells = make([]netlist.Cell, nc)
	for i := range n.Cells {
		c := &n.Cells[i]
		c.Kind = netlist.CellKind(r.U8())
		c.Add = approx.AdderKind(r.U8())
		c.Mul = approx.MultKind(r.U8())
		ni := r.Count(4)
		if r.Err() != nil {
			return nil, store.ErrMalformed
		}
		c.In = make([]netlist.Net, ni)
		for j := range c.In {
			c.In[j] = netlist.Net(r.U32())
		}
		no := r.Count(4)
		if r.Err() != nil {
			return nil, store.ErrMalformed
		}
		c.Out = make([]netlist.Net, no)
		for j := range c.Out {
			c.Out[j] = netlist.Net(r.U32())
		}
	}
	n.Inputs = decodePorts(r)
	n.Outputs = decodePorts(r)
	var act netlist.Activity
	act.Vectors = int(r.U32())
	na := r.Count(8)
	if r.Err() != nil {
		return nil, store.ErrMalformed
	}
	act.PerCell = make([]float64, na)
	for i := range act.PerCell {
		act.PerCell[i] = r.F64()
	}
	rep := decodeReport(r)
	opt := decodeReport(r)
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return &charEntry{net: n, act: act, rep: rep, opt: opt}, nil
}

// loadChar fetches and decodes a characterization from the store;
// a decode failure counts as degradation and reads as a miss.
func loadChar(st *store.Store, key charKey) (*charEntry, bool) {
	payload, ok := st.Get(charStoreKey(key))
	if !ok {
		return nil, false
	}
	e, err := decodeCharEntry(payload)
	if err != nil {
		st.NoteDecodeError()
		return nil, false
	}
	return e, true
}
