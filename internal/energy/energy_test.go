package energy

import (
	"math"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func model(t *testing.T) *Model {
	t.Helper()
	rec, err := ecg.NSRDBRecord(0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := NewStimulus(rec)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(stim)
	m.Vectors = 200 // keep tests fast
	return m
}

func ama5(k int) dsp.ArithConfig {
	return dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
}

func TestStageEnergyPositive(t *testing.T) {
	m := model(t)
	for _, s := range pantompkins.Stages {
		e, err := m.StageEnergy(s, dsp.Accurate())
		if err != nil {
			t.Fatal(err)
		}
		if e <= 0 {
			t.Errorf("stage %v accurate energy %v, want > 0", s, e)
		}
	}
}

func TestApproximationReducesStageEnergy(t *testing.T) {
	m := model(t)
	for _, s := range []pantompkins.Stage{pantompkins.LPF, pantompkins.HPF, pantompkins.MWI} {
		base, err := m.StageEnergy(s, dsp.Accurate())
		if err != nil {
			t.Fatal(err)
		}
		app, err := m.StageEnergy(s, ama5(pantompkins.MaxLSBs[s]))
		if err != nil {
			t.Fatal(err)
		}
		if !(app < base) {
			t.Errorf("stage %v: approximated energy %v not below accurate %v", s, app, base)
		}
	}
}

func TestStageEnergyMonotoneForMWI(t *testing.T) {
	// The MWI stage has no constant-folding oddities: its energy must
	// decrease monotonically with k.
	m := model(t)
	prev := math.Inf(1)
	for k := 0; k <= 16; k += 4 {
		e, err := m.StageEnergy(pantompkins.MWI, ama5(k))
		if err != nil {
			t.Fatal(err)
		}
		if e >= prev {
			t.Errorf("MWI energy at k=%d (%v) not below k-4 (%v)", k, e, prev)
		}
		prev = e
	}
}

func TestPipelineEnergyIsSumOfStages(t *testing.T) {
	m := model(t)
	cfg := pantompkins.AccurateConfig()
	total, err := m.PipelineEnergy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range pantompkins.Stages {
		e, err := m.StageEnergy(s, cfg.Stage[s])
		if err != nil {
			t.Fatal(err)
		}
		sum += e
	}
	if math.Abs(total-sum) > 1e-9 {
		t.Errorf("pipeline %v != sum of stages %v", total, sum)
	}
}

func TestPipelineReductionAccurateIsOne(t *testing.T) {
	m := model(t)
	red, err := m.PipelineReduction(pantompkins.AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(red-1) > 1e-9 {
		t.Errorf("accurate reduction = %v, want 1", red)
	}
}

func TestB9ReductionInPaperBand(t *testing.T) {
	// The paper reports ~19.7x for B9; our activity-based model must land
	// in the same order of magnitude (documented in EXPERIMENTS.md).
	m := model(t)
	var b9 pantompkins.Config
	ks := []int{10, 12, 2, 8, 16}
	for i, s := range pantompkins.Stages {
		b9.Stage[s] = ama5(ks[i])
	}
	red, err := m.PipelineReduction(b9)
	if err != nil {
		t.Fatal(err)
	}
	if red < 3 || red > 60 {
		t.Errorf("B9 reduction %v outside the plausible band [3, 60]", red)
	}
}

func TestStageReportCaching(t *testing.T) {
	m := model(t)
	r1, err := m.StageReport(pantompkins.SQR, ama5(8))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.StageReport(pantompkins.SQR, ama5(8))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy || r1.Power != r2.Power || r1.Delay != r2.Delay {
		t.Error("cached report differs")
	}
}

func TestRaspberryPiSevenOrders(t *testing.T) {
	m := model(t)
	rpi, err := m.RaspberryPiEnergy()
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.PipelineEnergy(pantompkins.AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rpi/base-RaspberryPiEnergyFactor) > 1 {
		t.Errorf("RPi factor %v, want %v", rpi/base, RaspberryPiEnergyFactor)
	}
}

func TestStimulusTooShort(t *testing.T) {
	rec, err := ecg.NSRDBRecord(0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := NewStimulus(rec)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(stim)
	m.Vectors = 100000 // longer than the record
	if _, err := m.StageEnergy(pantompkins.LPF, dsp.Accurate()); err == nil {
		t.Error("oversized vector request accepted")
	}
}

func TestSensorNodes(t *testing.T) {
	nodes := SensorNodes()
	if len(nodes) != 5 {
		t.Fatalf("want 5 sensor nodes, got %d", len(nodes))
	}
	for _, n := range nodes {
		// Paper Fig 1: sensing energy at least six orders of magnitude
		// below total; processing 40-60% of total.
		if n.SensingToTotalOrders() < 5 {
			t.Errorf("%s: sensing only %v orders below total", n.Name, n.SensingToTotalOrders())
		}
		if n.ProcessingShare < 0.4 || n.ProcessingShare > 0.6 {
			t.Errorf("%s: processing share %v outside 40-60%%", n.Name, n.ProcessingShare)
		}
		if n.ProcessingJPerDay() <= 0 {
			t.Errorf("%s: non-positive processing energy", n.Name)
		}
	}
}
