module github.com/xbiosip/xbiosip

go 1.24
