// Package xbiosip_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with
// go test -bench=. -benchmem). Each benchmark executes the corresponding
// experiment from internal/experiments and logs the regenerated artefact;
// EXPERIMENTS.md records paper-vs-measured values.
//
// Benchmarks default to a reduced record set (one 6,000-sample synthetic
// NSRDB-like record) so the whole suite completes in minutes; cmd/xbiosip
// regenerates the same artefacts at the paper's full 20,000-sample scale.
package xbiosip_test

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dse"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/experiments"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
	"github.com/xbiosip/xbiosip/internal/store"
)

var (
	setupOnce sync.Once
	setup     *experiments.Setup
	setupErr  error
)

// benchSetup shares one evaluation environment across benchmarks (building
// reference outputs and the energy stimulus is itself nontrivial work).
func benchSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	setupOnce.Do(func() {
		setup, setupErr = experiments.NewSetup(1, 6000)
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
	return setup
}

// BenchmarkTable1ElementaryLibrary regenerates Table 1 (synthesis results
// of the elementary approximate adder and multiplier library).
func BenchmarkTable1ElementaryLibrary(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table1()
	}
	b.Log("\n" + out)
}

// BenchmarkFig1SensorNodeEnergy regenerates Fig 1 (sensing vs total energy
// of five bio-signal monitoring sensor nodes).
func BenchmarkFig1SensorNodeEnergy(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Fig1()
	}
	b.Log("\n" + out)
}

// BenchmarkFig2LPFResilience regenerates Fig 2 (error resilience of the
// low-pass filter stage: area/power/delay/energy reductions, SSIM and peak
// detection accuracy over approximated LSBs).
func BenchmarkFig2LPFResilience(b *testing.B) {
	s := benchSetup(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.StageResilience(pantompkins.LPF)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatResilience(pantompkins.LPF, rows)
	}
	b.Log("\n" + out)
}

// BenchmarkFig8StageResilience regenerates Fig 8(a)-(d): the error
// resilience sweeps of the HPF, differentiator, squarer and MWI stages.
func BenchmarkFig8StageResilience(b *testing.B) {
	s := benchSetup(b)
	stages := []pantompkins.Stage{pantompkins.HPF, pantompkins.DER, pantompkins.SQR, pantompkins.MWI}
	for _, st := range stages {
		b.Run(st.String(), func(b *testing.B) {
			var out string
			for i := 0; i < b.N; i++ {
				rows, err := s.StageResilience(st)
				if err != nil {
					b.Fatal(err)
				}
				out = experiments.FormatResilience(st, rows)
			}
			b.Log("\n" + out)
		})
	}
}

// BenchmarkFig10OutputQuality regenerates Fig 10 (accurate vs approximate
// output quality with 4 LSBs approximated at all five stages).
func BenchmarkFig10OutputQuality(b *testing.B) {
	s := benchSetup(b)
	var out string
	for i := 0; i < b.N; i++ {
		r, err := s.UniformApproximation(4)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatUniform(r)
	}
	b.Log("\n" + out)
}

// BenchmarkTable2PreprocessingGrid regenerates Table 2 (PSNR and energy of
// the LPF x HPF design grid, exhaustive 81 points plus the Algorithm 1
// trace). Three cache regimes:
//
//   - warm shares one evaluation environment across iterations, so after
//     the first pass every design is a cache hit and the number measures
//     the engine's memoized steady state;
//   - cold rebuilds the evaluator AND empties the kernel's global
//     plan/table cache per iteration, so every table build and every
//     simulation is paid inside the timed region. The process-wide energy
//     characterization cache intentionally survives — a characterization
//     is a pure function of (stage, config, stimulus), and sharing it
//     across evaluators is exactly the amortization the cache exists for;
//   - scratch additionally empties the characterization cache, the honest
//     everything-from-zero cost (every stage netlist re-synthesized and
//     re-simulated through the lane-packed activity engine).
func BenchmarkTable2PreprocessingGrid(b *testing.B) {
	run := func(b *testing.B, s *experiments.Setup) {
		r, err := s.Table2(15)
		if err != nil {
			b.Fatal(err)
		}
		_ = s.FormatTable2(r)
	}
	b.Run("warm", func(b *testing.B) {
		s := benchSetup(b)
		for i := 0; i < b.N; i++ {
			run(b, s)
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := experiments.NewSetup(1, 6000)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			kernel.DropCaches()
			run(b, s)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := experiments.NewSetup(1, 6000)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			kernel.DropCaches()
			energy.DropCaches()
			run(b, s)
		}
	})
}

// BenchmarkStoreColdWarm measures what the persistent artifact store
// buys a fresh process: fromzero is the everything-from-zero Table 2
// cost (empty kernel and characterization caches, no store), warmstore
// the same scratch start but with a pre-populated artifact store
// attached, so tables and characterizations load from disk instead of
// being rebuilt. The delta is the store's amortization of the
// simulation-dominated cold start across processes.
func BenchmarkStoreColdWarm(b *testing.B) {
	run := func(b *testing.B, s *experiments.Setup) {
		r, err := s.Table2(15)
		if err != nil {
			b.Fatal(err)
		}
		_ = s.FormatTable2(r)
	}
	detach := func() {
		kernel.AttachStore(nil)
		energy.AttachStore(nil)
		kernel.DropCaches()
		energy.DropCaches()
	}
	b.Cleanup(detach)
	b.Run("fromzero", func(b *testing.B) {
		detach()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := experiments.NewSetup(1, 6000)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			kernel.DropCaches()
			energy.DropCaches()
			run(b, s)
		}
	})
	b.Run("warmstore", func(b *testing.B) {
		detach()
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		// Populate the store once, outside the timed region.
		s, err := experiments.NewSetup(1, 6000)
		if err != nil {
			b.Fatal(err)
		}
		kernel.AttachStore(st)
		energy.AttachStore(st)
		run(b, s)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, err := experiments.NewSetup(1, 6000)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			// DropCaches detaches the store (generation contract), so the
			// warm-store regime re-attaches explicitly each iteration.
			kernel.DropCaches()
			energy.DropCaches()
			kernel.AttachStore(st)
			energy.AttachStore(st)
			run(b, s)
		}
		b.StopTimer()
		fst := st.Stats()
		if fst.Hits == 0 {
			b.Fatalf("warm-store regime never hit the store: %+v", fst)
		}
	})
}

// BenchmarkEnergyCharacterization measures the cold energy model on its
// own: characterizing every stage at a representative approximation depth
// from an empty characterization cache (synthesize, lane-packed activity
// simulation, activity-weighted report), plus the all-hits warm lookup.
func BenchmarkEnergyCharacterization(b *testing.B) {
	rec, err := ecg.NSRDBRecord(0, 6000)
	if err != nil {
		b.Fatal(err)
	}
	stim, err := energy.NewStimulus(rec)
	if err != nil {
		b.Fatal(err)
	}
	em := energy.NewModel(stim)
	var b9 pantompkins.Config
	for i, s := range pantompkins.Stages {
		b9.Stage[s] = dsp.ArithConfig{
			LSBs: []int{10, 12, 2, 8, 16}[i],
			Add:  approx.ApproxAdd5,
			Mul:  approx.AppMultV1,
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			energy.DropCaches()
			if _, err := em.PipelineReduction(b9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := em.PipelineReduction(b9); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := em.PipelineReduction(b9); err != nil {
				b.Fatal(err)
			}
		}
	})
	energy.DropCaches()
}

// BenchmarkFig11ExplorationTime regenerates Fig 11 (exploration time of
// exhaustive / heuristic / Algorithm 1 over 1..5 stages).
func BenchmarkFig11ExplorationTime(b *testing.B) {
	s := benchSetup(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.ExplorationTime()
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatFig11(rows)
	}
	b.Log("\n" + out)
}

// BenchmarkFig12EnergyQuality regenerates Fig 12 (peak detection accuracy
// and energy reduction of configurations A1, A2 and B1-B14).
func BenchmarkFig12EnergyQuality(b *testing.B) {
	s := benchSetup(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		var err2 error
		out, err2 = s.FormatFig12(rows)
		if err2 != nil {
			b.Fatal(err2)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFig13Misclassification regenerates Fig 13 (heartbeat
// misclassification analysis of design B10).
func BenchmarkFig13Misclassification(b *testing.B) {
	s := benchSetup(b)
	b10 := experiments.Fig12Configs[10] // B10
	if b10.Name != "B10" {
		b.Fatalf("config table changed: %s", b10.Name)
	}
	var out string
	for i := 0; i < b.N; i++ {
		r, err := s.Misclassification(b10)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatMisclassification(r)
	}
	b.Log("\n" + out)
}

// BenchmarkPipelinePush measures the streaming per-sample hot path (one
// raw ADC sample through all five stages) for the accurate pipeline and an
// approximate design, with allocation accounting: the near-sensor contract
// is zero allocations per sample.
func BenchmarkPipelinePush(b *testing.B) {
	rec, err := ecg.NSRDBRecord(0, 6000)
	if err != nil {
		b.Fatal(err)
	}
	cfgs := map[string]pantompkins.Config{"accurate": pantompkins.AccurateConfig()}
	var b9 pantompkins.Config
	for i, s := range pantompkins.Stages {
		b9.Stage[s] = dsp.ArithConfig{
			LSBs: []int{10, 12, 2, 8, 16}[i],
			Add:  approx.ApproxAdd5,
			Mul:  approx.AppMultV1,
		}
	}
	cfgs["b9"] = b9
	for name, cfg := range cfgs {
		b.Run(name, func(b *testing.B) {
			p, err := pantompkins.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			n := len(rec.Samples)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Push(rec.Samples[i%n])
			}
		})
	}
}

// BenchmarkDSEWorkers measures the wall-clock scaling of the parallel
// evaluation engine on the pre-processing exploration (the 81-point
// exhaustive grid plus Algorithm 1 over the same space, as in Table 2).
// Every iteration gets a FRESH evaluator so the memoizing cache cannot
// hide the simulation cost; compare the workers=1 and workers=N
// sub-benchmarks for the speedup.
func BenchmarkDSEWorkers(b *testing.B) {
	rec, err := ecg.NSRDBRecord(0, 6000)
	if err != nil {
		b.Fatal(err)
	}
	stim, err := energy.NewStimulus(rec)
	if err != nil {
		b.Fatal(err)
	}
	em := energy.NewModel(stim)
	// On a single-core host the pool still runs (overlap is just
	// time-sliced); the wall-clock speedup shows from 2 cores up.
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 2 {
		parallel = 4
	}
	for _, workers := range []int{1, parallel} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eval, err := core.NewEvaluator([]*ecg.Record{rec})
				if err != nil {
					b.Fatal(err)
				}
				evalPSNR := func(cfg pantompkins.Config) (float64, error) {
					q, err := eval.Evaluate(cfg)
					if err != nil {
						return 0, err
					}
					return q.PSNR, nil
				}
				opt := dse.Options{
					Base:       pantompkins.AccurateConfig(),
					Stages:     []pantompkins.Stage{pantompkins.LPF, pantompkins.HPF},
					LSBs:       core.DefaultLSBLists(),
					Mults:      []approx.MultKind{approx.AppMultV1},
					Adds:       []approx.AdderKind{approx.ApproxAdd5},
					Constraint: 15,
					Workers:    workers,
				}
				b.StartTimer()
				if _, err := dse.ExhaustiveGrid(opt, pantompkins.LPF, pantompkins.HPF, evalPSNR, em.StageEnergy); err != nil {
					b.Fatal(err)
				}
				if _, err := dse.Generate(opt, evalPSNR, em.StageEnergy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluatorShards measures the record-shard scheduling level: a
// fresh evaluator over several records evaluates a set of cold designs,
// with one design's records kept sequential (shards=1) or fanned out
// across the pool (shards=records). On a multi-core host the sharded
// variant wins even when only one design is in flight; the results are
// bit-identical either way.
func BenchmarkEvaluatorShards(b *testing.B) {
	const numRecords = 4
	var records []*ecg.Record
	for i := 0; i < numRecords; i++ {
		rec, err := ecg.NSRDBRecord(i, 3000)
		if err != nil {
			b.Fatal(err)
		}
		records = append(records, rec)
	}
	var designs []pantompkins.Config
	for _, k := range []int{2, 6, 10, 14} {
		var cfg pantompkins.Config
		cfg.Stage[pantompkins.HPF] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		designs = append(designs, cfg)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4
	}
	for _, shards := range []int{1, numRecords} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eval, err := core.NewEvaluatorOpts(records, core.EvalOptions{Workers: workers, RecordShards: shards})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, cfg := range designs {
					if _, err := eval.Evaluate(cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationEnergyAccounting compares the three energy-accounting
// policies (raw module composition, const-prop P*D, activity-weighted) per
// stage — the modelling ablation DESIGN.md §6 calls out.
func BenchmarkAblationEnergyAccounting(b *testing.B) {
	s := benchSetup(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.EnergyAccountingAblation()
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatAblation(rows)
	}
	b.Log("\n" + out)
}

// BenchmarkNoiseRobustness sweeps EMG noise and compares accurate vs B9
// detection accuracy (extension experiment; the approximation must not
// erode the algorithm's noise margin).
func BenchmarkNoiseRobustness(b *testing.B) {
	s := benchSetup(b)
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.NoiseRobustness([]float64{0.02, 0.05, 0.10, 0.20}, 6000)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatNoiseRobustness(rows)
	}
	b.Log("\n" + out)
}

// BenchmarkServe measures the multi-patient streaming service at the
// wearable-monitor rate (360 Hz, B9 design): the sustained sessions/core
// one single-goroutine Service shard multiplexes, and the p99
// sample-to-event latency of live QRS events. One benchmark iteration is
// one radio round — every session ingests one BLE-sized frame and the
// service drains fully — so detection never falls more than one frame
// behind acquisition.
func BenchmarkServe(b *testing.B) {
	gen := ecg.DefaultConfig()
	gen.FS = 360
	gen.Seed = 11
	rec, err := gen.Generate("serve-360", 8*360)
	if err != nil {
		b.Fatal(err)
	}
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}

	const frameN = 24
	run := func(b *testing.B, sessions int, track, noBatch bool) []int64 {
		svc, err := serve.New(serve.Config{
			FS:            360,
			Pipeline:      b9,
			MaxSessions:   sessions,
			BufferSamples: 4 * frameN,
			TrackLatency:  track,
			NoBatch:       noBatch,
		})
		if err != nil {
			b.Fatal(err)
		}
		pos := make([]int, sessions)
		seqs := make([]uint16, sessions)
		var buf []byte
		events := make([]serve.Event, 0, 4*sessions)
		var lats []int64
		round := func(collect bool) {
			for sess := 0; sess < sessions; sess++ {
				p := pos[sess]
				if p+frameN > len(rec.Samples) {
					p = 0
				}
				buf = serve.AppendFrame(buf[:0], uint32(sess+1), seqs[sess], 0, rec.Samples[p:p+frameN])
				if _, err := svc.Ingest(buf); err != nil {
					b.Fatal(err)
				}
				seqs[sess]++
				pos[sess] = p + frameN
			}
			events = svc.Drain(events[:0])
			if collect {
				for _, ev := range events {
					if ev.Kind == serve.EventBeat {
						lats = append(lats, ev.LatencyNs)
					}
				}
			}
		}
		// Warm a full record cycle off the clock: connect every session,
		// build its pipeline, wrap the ingest ring and reach the drain's
		// steady state (batch scratch sized, detector trim active), so the
		// timed rounds measure sustained throughput rather than a cold
		// start whose amortized cost depends on b.N.
		for r := 0; r < len(rec.Samples)/frameN; r++ {
			round(false)
		}
		lats = lats[:0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round(track)
		}
		b.StopTimer()
		total := float64(b.N) * float64(sessions) * frameN
		if sec := b.Elapsed().Seconds(); sec > 0 {
			sps := total / sec
			b.ReportMetric(sps/360, "sessions/core")
			b.ReportMetric(1e9*sec/total, "ns/sample")
		}
		return lats
	}

	b.Run("sessions", func(b *testing.B) {
		run(b, 4096, false, false)
	})
	b.Run("sessions-scalar", func(b *testing.B) {
		// The per-sample oracle drain over the identical workload: the
		// sessions/core gap against "sessions" is the batched-drain win.
		run(b, 4096, false, true)
	})
	b.Run("latency", func(b *testing.B) {
		lats := run(b, 256, true, false)
		if len(lats) == 0 {
			return
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p99 := lats[len(lats)*99/100]
		b.ReportMetric(float64(p99)/1e3, "p99-latency-us")
	})
}

// BenchmarkTransport measures the full streaming path — framing, link,
// ingest, drain, events — once per transport: the in-process loop
// (serve.Run) against real loopback TCP and UDP sockets (serve.Listen +
// serve.RunNet, length-delimited frames with lockstep drain-sync). One
// benchmark iteration is one complete 32-session run over a 2-second
// record, including the dial; the inproc/tcp/udp sessions-per-core gap
// is the price of the wire.
func BenchmarkTransport(b *testing.B) {
	gen := ecg.DefaultConfig()
	gen.FS = 360
	gen.Seed = 11
	rec, err := gen.Generate("transport-360", 2*360)
	if err != nil {
		b.Fatal(err)
	}
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}

	const sessions = 32
	sources := make([]serve.Source, sessions)
	for i := range sources {
		sources[i] = serve.Source{Session: uint32(i + 1), Samples: rec.Samples}
	}
	cfg := serve.Config{FS: 360, Pipeline: b9, MaxSessions: sessions}

	report := func(b *testing.B) {
		total := float64(b.N) * float64(sessions) * float64(len(rec.Samples))
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(total/sec/360, "sessions/core")
			b.ReportMetric(1e9*sec/total, "ns/sample")
		}
	}

	b.Run("inproc", func(b *testing.B) {
		svc, err := serve.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		run := func() {
			if _, err := serve.Run(svc, serve.TransportConfig{FrameSamples: 32}, sources, nil); err != nil {
				b.Fatal(err)
			}
		}
		run() // warm: build every session's pipeline off the clock
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
		b.StopTimer()
		report(b)
	})

	for _, network := range []string{"tcp", "udp"} {
		b.Run(network, func(b *testing.B) {
			svc, err := serve.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			ln, err := serve.Listen(serve.ListenConfig{Network: network}, svc)
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			run := func() {
				st, err := serve.RunNet(serve.NetConfig{
					Network: network, Addr: ln.Addr().String(),
					FrameSamples: 32, Seed: 11,
				}, sources)
				if err != nil {
					b.Fatal(err)
				}
				if st.Shed != 0 {
					b.Fatalf("%d frames shed on a loopback run", st.Shed)
				}
			}
			run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.StopTimer()
			report(b)
		})
	}
}

// BenchmarkGateway measures the sharded front door over the same workload
// as BenchmarkServe/sessions: 4096 sessions hashed across N Service
// shards, one BLE frame per session per iteration, every shard drained on
// its own worker and the batches merged into the canonical stream. The
// per-shard drains run concurrently, so aggregate sessions/core scales
// with shard count from 2 cores up; on a single-core host the workers are
// time-sliced and the shard counts mainly measure the merge overhead
// (same caveat as BenchmarkDSEWorkers).
func BenchmarkGateway(b *testing.B) {
	gen := ecg.DefaultConfig()
	gen.FS = 360
	gen.Seed = 11
	rec, err := gen.Generate("gateway-360", 8*360)
	if err != nil {
		b.Fatal(err)
	}
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}

	const sessions = 4096
	const frameN = 24
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			gw, err := serve.NewGateway(serve.GatewayConfig{
				Shards: shards,
				// 2x slack on the hash spread so no shard ever evicts.
				Service: serve.Config{
					FS: 360, Pipeline: b9, MaxSessions: 2 * sessions,
					BufferSamples: 4 * frameN,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer gw.Close()
			pos := make([]int, sessions)
			seqs := make([]uint16, sessions)
			var buf []byte
			var events []serve.Event
			round := func() {
				for sess := 0; sess < sessions; sess++ {
					p := pos[sess]
					if p+frameN > len(rec.Samples) {
						p = 0
					}
					buf, seqs[sess] = serve.SplitFrames(buf[:0], uint32(sess+1), seqs[sess], 0, rec.Samples[p:p+frameN])
					if _, err := gw.Ingest(buf); err != nil {
						b.Fatal(err)
					}
					pos[sess] = p + frameN
				}
				events = gw.Drain(events[:0])
			}
			// Warm a full record cycle off the clock (see BenchmarkServe):
			// without it, shard-count comparisons are skewed by how much of
			// the cold start each b.N happens to amortize.
			for r := 0; r < len(rec.Samples)/frameN; r++ {
				round()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
			b.StopTimer()
			if st := gw.Stats(); st.Evictions != 0 {
				b.Fatalf("%d evictions during the benchmark", st.Evictions)
			}
			total := float64(b.N) * float64(sessions) * frameN
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(total/sec/360, "sessions/core")
				b.ReportMetric(1e9*sec/total, "ns/sample")
			}
		})
	}
}
