// Resilience sweep: reproduce the paper's motivational analysis (Fig 2) —
// sweep the number of approximated LSBs in one stage of the Pan-Tompkins
// pipeline and watch detection accuracy hold while signal quality and
// energy fall, until the error-resilience threshold.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/xbiosip/xbiosip/internal/experiments"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func main() {
	stage := pantompkins.LPF
	if len(os.Args) > 1 {
		found := false
		for _, st := range pantompkins.Stages {
			if st.String() == os.Args[1] {
				stage, found = st, true
			}
		}
		if !found {
			log.Fatalf("unknown stage %q (want LPF, HPF, DER, SQR or MWI)", os.Args[1])
		}
	}

	setup, err := experiments.NewSetup(1, 12000)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := setup.StageResilience(stage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatResilience(stage, rows))

	thr := experiments.ResilienceThreshold(rows)
	fmt.Printf("\nThe %v stage tolerates %d approximated LSBs with full detection accuracy.\n", stage, thr)
	fmt.Println("Compare with the paper: LPF threshold 14 (Fig 2), extreme MWI tolerance (Fig 8d),")
	fmt.Println("and the ineffective differentiator (Fig 8b).")
}
