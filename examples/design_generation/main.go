// Design generation: run the complete two-gate XBioSiP methodology — the
// paper's Fig 4 flow — and print the generated approximate processor, its
// quality and its energy reduction, plus the exploration trace showing how
// few design points Algorithm 1 evaluates.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
)

func main() {
	// Evaluation set: two NSRDB-like records of 10,000 samples.
	var records []*ecg.Record
	for i := 0; i < 2; i++ {
		rec, err := ecg.NSRDBRecord(i, 10000)
		if err != nil {
			log.Fatal(err)
		}
		records = append(records, rec)
	}
	eval, err := core.NewEvaluator(records)
	if err != nil {
		log.Fatal(err)
	}
	stim, err := energy.NewStimulus(records[0])
	if err != nil {
		log.Fatal(err)
	}

	m := core.NewMethodology(eval, energy.NewModel(stim))
	m.SignalConstraint = 15 // PSNR gate on the pre-processed signal (dB)
	m.FinalConstraint = 1.0 // no loss in peak detection accuracy

	design, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("XBioSiP two-gate design generation")
	fmt.Printf("gate 1 (pre-processing, PSNR >= %.0f dB): %d evaluations\n",
		m.SignalConstraint, design.PreEvaluations)
	for _, c := range design.PreTrace {
		mark := "fail"
		if c.Passed {
			mark = "pass"
		}
		fmt.Printf("  phase %d: %v -> PSNR %.2f (%s)\n", c.Phase, c.Config, c.Quality, mark)
	}
	fmt.Printf("gate 2 (signal processing, accuracy >= %.0f%%): %d evaluations\n",
		100*m.FinalConstraint, design.ProcEvaluations)
	fmt.Printf("\ngenerated processor: %v\n", design.Config)
	fmt.Printf("  accuracy %.2f%%  PSNR %.2f dB  SSIM %.3f\n",
		100*design.Quality.PeakAccuracy, design.Quality.PSNR, design.Quality.SSIM)
	fmt.Printf("  energy reduction vs accurate: %.2fx\n", design.EnergyReduction)
	fmt.Printf("  total evaluations: %d (an exhaustive 9x9 pre-processing grid alone is 81)\n",
		eval.Evaluations())
}
