// Net gateway: the sharded gateway behind a real socket. A serve.Listener
// accepts length-delimited frames on loopback TCP, pumps them into a
// 2-shard gateway, and NACKs what it must shed; serve.RunNet streams three
// wearables through it with seeded chaos — 2% of frames tear the
// connection down mid-write and the client redials with exponential
// backoff — while a 3% lossy fault link drops packets before they reach
// the wire. Hold-last concealment keeps detection running through both
// kinds of damage, and the listener's stats say what the wire absorbed.
// The same binary logic runs over "udp" by changing one string.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

const (
	patients = 3
	samples  = 6000 // 30 s per patient
	seed     = 2026
)

func main() {
	// The deployed design: the paper's B9.
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}

	recs := make([]*ecg.Record, patients)
	for i := range recs {
		rec, err := ecg.NSRDBRecord(i, samples)
		if err != nil {
			log.Fatal(err)
		}
		recs[i] = rec
	}
	fs := recs[0].FS

	gw, err := serve.NewGateway(serve.GatewayConfig{
		Shards: 2,
		Service: serve.Config{
			FS: fs, Pipeline: b9, MaxSessions: 2 * patients,
			Conceal: serve.GapHold,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	// The gateway goes on the wire: a loopback TCP listener with idle
	// reaping and overload shedding, delivering drained events to the
	// monitoring side as they happen.
	beats := make([][]int, patients+1)
	gaps := make([]int, patients+1)
	ln, err := serve.Listen(serve.ListenConfig{
		Network: "tcp",
		OnEvents: func(events []serve.Event) {
			for _, ev := range events {
				switch ev.Kind {
				case serve.EventBeat:
					beats[ev.Session] = append(beats[ev.Session], ev.Peak)
				case serve.EventGap:
					gaps[ev.Session] += ev.Gap
				}
			}
		},
	}, gw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway %s listening on tcp %s\n\n", gw, ln.Addr())

	// Three wearables, each behind a 3% lossy radio; the socket client
	// adds its own chaos — 2% of frames tear the connection mid-write.
	sources := make([]serve.Source, patients)
	for id := range sources {
		sources[id] = serve.Source{
			Session: uint32(id + 1),
			Samples: recs[id].Samples,
			Link: serve.NewFaultLink(serve.FaultConfig{
				Seed: seed + uint64(id), Loss: 0.03,
			}),
		}
	}
	nst, err := serve.RunNet(serve.NetConfig{
		Network: "tcp", Addr: ln.Addr().String(),
		FrameSamples: 24, Seed: seed,
		Disconnect: 0.02, PartialWrites: true,
	}, sources)
	if err != nil {
		log.Fatal(err)
	}
	lst := ln.Stats()
	if err := ln.Close(); err != nil {
		log.Fatal(err)
	}

	// Reference: the same records through dedicated fault-free streams.
	pipe, err := pantompkins.New(b9)
	if err != nil {
		log.Fatal(err)
	}
	for id, rec := range recs {
		stream := pipe.Stream(rec.FS)
		for _, x := range rec.Samples {
			stream.Push(x)
		}
		ref := stream.Finish()
		fmt.Printf("%s: %d beats detected over the wire (fault-free reference %d), %d samples concealed\n",
			rec.Name, len(beats[id+1]), len(ref.Peaks), gaps[id+1])
	}
	fmt.Printf("\nwire: %d conns accepted, %d frames ingested, %d drains, %d NACKs sent, %d shed, %d idle timeouts\n",
		lst.Accepted, lst.Frames, lst.Drains, lst.Nacks, lst.Shed, lst.Timeouts)
	fmt.Printf("client: %d reconnects, %d NACKs absorbed, %d frames shed after retries, %.1f ms in backoff\n",
		nst.Reconnects, nst.Nacks, nst.Shed, float64(nst.BackoffNs)/1e6)
	st := gw.Stats()
	fmt.Printf("service: %d gap episodes, %d frames lost, %d samples concealed\n",
		st.GapFrames, st.LostFrames, st.Concealed)
}
