// Streaming monitor: a multi-patient edge gateway built on the serve
// service. Each simulated wearable frames its ADC samples into BLE-sized
// packets (8-byte header + int16 samples); the gateway ingests the
// interleaved packet streams into one serve.Service — a struct-of-arrays
// session pool with no per-patient goroutine — and consumes live QRS
// events per patient as it drains. The service guarantees the events are
// bit-identical to running pantompkins.Pipeline.Stream over each record
// alone, which this example verifies at the end.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

const (
	patients = 3
	samples  = 6000 // 30 s per patient
	frameN   = 16   // samples per radio packet
)

func main() {
	// The deployed design: the paper's B9 (zero accuracy loss, maximum
	// energy savings).
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}

	// The patients' records; all share one sampling rate.
	recs := make([]*ecg.Record, patients)
	for i := range recs {
		rec, err := ecg.NSRDBRecord(i, samples)
		if err != nil {
			log.Fatal(err)
		}
		recs[i] = rec
	}
	fs := recs[0].FS

	// The gateway.
	svc, err := serve.New(serve.Config{FS: fs, Pipeline: b9, MaxSessions: patients})
	if err != nil {
		log.Fatal(err)
	}

	// Wearable side: frame each record into packets. Patient ids are the
	// session ids on the wire.
	type wearable struct {
		pos int
		seq uint16
	}
	wear := make([]wearable, patients)

	// Gateway side: live per-patient beat lists assembled from drain
	// events.
	beats := make([][]int, patients)
	events := make([]serve.Event, 0, 256)
	var buf []byte

	active := patients
	for active > 0 {
		// One radio round: every live wearable delivers one packet.
		for id := 0; id < patients; id++ {
			w := &wear[id]
			rec := recs[id]
			if w.pos >= len(rec.Samples) {
				continue
			}
			n := frameN
			if w.pos+n > len(rec.Samples) {
				n = len(rec.Samples) - w.pos
			}
			flags := uint8(0)
			if w.pos == 0 {
				flags |= serve.FlagStart
			}
			if w.pos+n == len(rec.Samples) {
				flags |= serve.FlagEnd
			}
			// SplitFrames encodes the chunk and hands back the next
			// sequence number, however many frames it took.
			buf, w.seq = serve.SplitFrames(buf[:0], uint32(id), w.seq, flags, rec.Samples[w.pos:w.pos+n])
			if _, err := svc.Ingest(buf); err != nil {
				log.Fatal(err)
			}
			w.pos += n
			if w.pos >= len(rec.Samples) {
				active--
			}
		}
		// The gateway drains after every radio round: detection advances
		// at most one packet behind acquisition.
		events = svc.Drain(events[:0])
		for _, ev := range events {
			if ev.Kind == serve.EventBeat {
				beats[ev.Session] = append(beats[ev.Session], ev.Peak)
			}
		}
	}

	// Report each patient like a bedside monitor would.
	for id, rec := range recs {
		fmt.Printf("%s: %.0f s streamed in %d-sample frames, %d beats (reference %d)\n",
			rec.Name, rec.DurationSec(), frameN, len(beats[id]), len(rec.Annotations))
		fmt.Print("  heart rate: ")
		window := 10 * fs
		for start := 0; start+window <= len(rec.Samples); start += window {
			first, last, n := -1, -1, 0
			for _, p := range beats[id] {
				if p < start || p >= start+window {
					continue
				}
				if first < 0 {
					first = p
				}
				last = p
				n++
			}
			if n >= 2 {
				bpm := 60 * float64(n-1) * float64(fs) / float64(last-first)
				fmt.Printf("%3.0f ", bpm)
			} else {
				fmt.Print("  - ")
			}
		}
		fmt.Println("bpm (10 s windows)")
	}
	st := svc.Stats()
	fmt.Printf("gateway: %d frames, %d samples, %d sessions finished\n",
		st.Frames, st.Samples, st.Finishes)

	// The service invariant: every patient's beats are bit-identical to a
	// dedicated Pipeline.Stream over the same record.
	pipe, err := pantompkins.New(b9)
	if err != nil {
		log.Fatal(err)
	}
	for id, rec := range recs {
		stream := pipe.Stream(rec.FS)
		for _, x := range rec.Samples {
			stream.Push(x)
		}
		ref := stream.Finish()
		if len(ref.Peaks) != len(beats[id]) {
			log.Fatalf("patient %d: gateway saw %d beats, dedicated stream %d", id, len(beats[id]), len(ref.Peaks))
		}
		for i := range ref.Peaks {
			if ref.Peaks[i] != beats[id][i] {
				log.Fatalf("patient %d: beat %d diverged", id, i)
			}
		}
	}
	fmt.Println("\nmultiplexed detections verified bit-identical to dedicated per-patient streams")
}
