// Streaming monitor: the near-sensor deployment mode. Samples arrive one
// at a time — there is no pre-loaded array on a wearable — so the
// pipeline is driven through its streaming API (Pipeline.Push), record by
// record with a Reset in between, the way a monitoring service consumes
// the streams of many patients in turn. The streamed stage outputs are
// bit-identical to batch processing, which this example verifies live.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func main() {
	// The deployed design: the paper's B9 (zero accuracy loss, maximum
	// energy savings).
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	pipe, err := pantompkins.New(b9)
	if err != nil {
		log.Fatal(err)
	}

	// Three patients stream 30 s each through ONE pipeline instance —
	// Reset isolates the records.
	for patient := 0; patient < 3; patient++ {
		rec, err := ecg.NSRDBRecord(patient, 6000)
		if err != nil {
			log.Fatal(err)
		}
		pipe.Reset()
		out := &pantompkins.Outputs{}
		for _, x := range rec.Samples {
			// One ADC sample in, one sample of every stage signal out.
			out.Append(pipe.Push(x))
		}
		det := pantompkins.Detect(out.Filtered, out.Integrated, rec.FS)

		fmt.Printf("%s: %.0f s streamed, %d beats (reference %d)\n",
			rec.Name, rec.DurationSec(), len(det.Peaks), len(rec.Annotations))
		fmt.Print("  heart rate: ")
		window := 10 * rec.FS
		for start := 0; start+window <= len(rec.Samples); start += window {
			first, last, n := -1, -1, 0
			for _, p := range det.Peaks {
				if p < start || p >= start+window {
					continue
				}
				if first < 0 {
					first = p
				}
				last = p
				n++
			}
			if n >= 2 {
				bpm := 60 * float64(n-1) * float64(rec.FS) / float64(last-first)
				fmt.Printf("%3.0f ", bpm)
			} else {
				fmt.Print("  - ")
			}
		}
		fmt.Println("bpm (10 s windows)")

		// The streaming path is bit-identical to batch processing.
		batch := pipe.Run(rec.Samples)
		for i := range batch.Integrated {
			if batch.Integrated[i] != out.Integrated[i] || batch.Filtered[i] != out.Filtered[i] {
				log.Fatalf("stream/batch divergence at sample %d", i)
			}
		}
	}
	fmt.Println("\nstreamed outputs verified bit-identical to batch processing")
}
