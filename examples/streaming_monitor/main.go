// Streaming monitor: the near-sensor deployment mode. Samples arrive one
// at a time — there is no pre-loaded array on a wearable — so the whole
// algorithm runs through the streaming API: Pipeline.Stream couples the
// five processing stages with the incremental StreamDetector, whose
// adaptive thresholds, RR statistics and searchback advance in O(1) per
// pushed sample. Nothing buffers the record and nothing rescans it, yet
// the detected beats are bit-identical to batch processing plus the
// whole-record detector — which this example verifies live.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func main() {
	// The deployed design: the paper's B9 (zero accuracy loss, maximum
	// energy savings).
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	pipe, err := pantompkins.New(b9)
	if err != nil {
		log.Fatal(err)
	}

	// Three patients stream 30 s each through ONE pipeline instance —
	// Stream resets the stages and the detector between records.
	for patient := 0; patient < 3; patient++ {
		rec, err := ecg.NSRDBRecord(patient, 6000)
		if err != nil {
			log.Fatal(err)
		}
		stream := pipe.Stream(rec.FS)
		beatsAt := make([]int, 0, 64) // sample index when each beat surfaced
		for i, x := range rec.Samples {
			// One ADC sample in; stage outputs and beat decisions advance
			// together, with the detector's bounded ~50 ms lookahead.
			stream.Push(x)
			if live := stream.Detector().Detection(); len(live.Peaks) > len(beatsAt) {
				for range live.Peaks[len(beatsAt):] {
					beatsAt = append(beatsAt, i)
				}
			}
		}
		det := stream.Finish()

		fmt.Printf("%s: %.0f s streamed, %d beats (reference %d)\n",
			rec.Name, rec.DurationSec(), len(det.Peaks), len(rec.Annotations))
		fmt.Print("  heart rate: ")
		window := 10 * rec.FS
		for start := 0; start+window <= len(rec.Samples); start += window {
			first, last, n := -1, -1, 0
			for _, p := range det.Peaks {
				if p < start || p >= start+window {
					continue
				}
				if first < 0 {
					first = p
				}
				last = p
				n++
			}
			if n >= 2 {
				bpm := 60 * float64(n-1) * float64(rec.FS) / float64(last-first)
				fmt.Printf("%3.0f ", bpm)
			} else {
				fmt.Print("  - ")
			}
		}
		fmt.Println("bpm (10 s windows)")
		if len(beatsAt) > 0 {
			lag := 0
			for i, at := range beatsAt {
				if d := at - det.MWIPeaks[i]; d > lag {
					lag = d
				}
			}
			fmt.Printf("  beats surfaced at most %d samples (%.0f ms) after their MWI peak\n",
				lag, 1000*float64(lag)/float64(rec.FS))
		}

		// The streaming path is bit-identical to batch processing followed
		// by the whole-record detector.
		batch := pipe.Run(rec.Samples)
		ref := pantompkins.Detect(batch.Filtered, batch.Integrated, rec.FS)
		if len(ref.Peaks) != len(det.Peaks) {
			log.Fatalf("stream/batch divergence: %d vs %d beats", len(det.Peaks), len(ref.Peaks))
		}
		for i := range ref.Peaks {
			if ref.Peaks[i] != det.Peaks[i] {
				log.Fatalf("stream/batch divergence at beat %d", i)
			}
		}
	}
	fmt.Println("\nstreamed detections verified bit-identical to whole-record batch detection")
}
