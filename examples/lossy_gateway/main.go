// Lossy gateway: the streaming monitor under realistic radio conditions.
// Three wearables stream the same records through a 2-shard serve.Gateway,
// but every packet crosses a seeded fault link that loses, duplicates,
// reorders and burst-drops frames. The gap-concealment policy (hold-last)
// synthesizes the missing spans so detection keeps running, EventGap marks
// the degraded stretches, and the per-session Health report says exactly
// how much of each patient's signal was concealed. Re-running with the
// same seed reproduces every fault and every event.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

const (
	patients = 3
	samples  = 6000 // 30 s per patient
	seed     = 2026
)

func main() {
	// The deployed design: the paper's B9.
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}

	recs := make([]*ecg.Record, patients)
	for i := range recs {
		rec, err := ecg.NSRDBRecord(i, samples)
		if err != nil {
			log.Fatal(err)
		}
		recs[i] = rec
	}
	fs := recs[0].FS

	// A sharded gateway with hold-last concealment: one Service per core
	// in a real deployment, two here to show the merged stream.
	gw, err := serve.NewGateway(serve.GatewayConfig{
		Shards: 2,
		Service: serve.Config{
			FS: fs, Pipeline: b9, MaxSessions: 2 * patients,
			Conceal: serve.GapHold,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()

	// One fault link per wearable, all derived from one seed: 3% uniform
	// loss, 1% duplicates, 2% reordering and occasional burst dropouts.
	sources := make([]serve.Source, patients)
	for id := range sources {
		sources[id] = serve.Source{
			Session: uint32(id + 1),
			Samples: recs[id].Samples,
			Link: serve.NewFaultLink(serve.FaultConfig{
				Seed: seed + uint64(id), Loss: 0.03, Dup: 0.01,
				Reorder: 0.02, Burst: 0.005, BurstLen: 6,
			}),
		}
	}

	// The transport loop frames, injects faults, retries on backpressure
	// and drains — deterministically, with no wall clock anywhere.
	beats := make([][]int, patients+1)
	gaps := make([]int, patients+1)
	tst, err := serve.Run(gw, serve.TransportConfig{FrameSamples: 24}, sources,
		func(events []serve.Event) {
			for _, ev := range events {
				switch ev.Kind {
				case serve.EventBeat:
					beats[ev.Session] = append(beats[ev.Session], ev.Peak)
				case serve.EventGap:
					gaps[ev.Session] += ev.Gap
				}
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	// Reference: the same records through dedicated fault-free streams.
	pipe, err := pantompkins.New(b9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossy gateway: %d patients through %s, seed %d\n\n", patients, gw, seed)
	for id, rec := range recs {
		stream := pipe.Stream(rec.FS)
		for _, x := range rec.Samples {
			stream.Push(x)
		}
		ref := stream.Finish()
		fmt.Printf("%s: %d beats detected through the lossy link (fault-free reference %d), %d samples concealed\n",
			rec.Name, len(beats[id+1]), len(ref.Peaks), gaps[id+1])
	}
	st := gw.Stats()
	fmt.Printf("\ndelivery: %d dup, %d gap episodes, %d reordered, %d frames lost, %d samples concealed, %d restarts\n",
		st.DupFrames, st.GapFrames, st.Reordered, st.LostFrames, st.Concealed, st.GapRestarts)
	fmt.Printf("transport: %d frames offered, %d backpressure retries, %d shed\n",
		tst.Frames, tst.Retries, tst.Shed)
}
