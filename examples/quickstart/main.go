// Quickstart: generate a synthetic ECG record, run the accurate and an
// approximate Pan-Tompkins pipeline, and compare detection quality and
// energy — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func main() {
	// 1. A 100-second ECG recording at 200 Hz, 16-bit ADC — the paper's
	//    acquisition chain — with ground-truth beat annotations.
	rec, err := ecg.NSRDBRecord(0, 20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record %s: %d samples, %d beats\n", rec.Name, len(rec.Samples), len(rec.Annotations))

	// 2. The accurate QRS detector.
	accurate, err := pantompkins.New(pantompkins.AccurateConfig())
	if err != nil {
		log.Fatal(err)
	}
	accRes := accurate.Process(rec)
	m, err := metrics.MatchPeaks(rec.Annotations, accRes.Detection.Peaks, core.DefaultPeakTolerance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accurate pipeline: %d peaks, accuracy %.2f%%\n",
		len(accRes.Detection.Peaks), 100*m.Sensitivity())

	// 3. The paper's headline design B9: 10/12/2/8/16 LSBs approximated
	//    with ApproxAdd5 + AppMultV1.
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	approxPipe, err := pantompkins.New(b9)
	if err != nil {
		log.Fatal(err)
	}
	appRes := approxPipe.Process(rec)
	m2, err := metrics.MatchPeaks(rec.Annotations, appRes.Detection.Peaks, core.DefaultPeakTolerance)
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := metrics.PSNR(metrics.ToFloat(accRes.Outputs.Filtered), metrics.ToFloat(appRes.Outputs.Filtered))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate B9:    %d peaks, accuracy %.2f%%, filtered-signal PSNR %.2f dB\n",
		len(appRes.Detection.Peaks), 100*m2.Sensitivity(), psnr)

	// 4. What did the approximation buy? Energy of the processing units.
	stim, err := energy.NewStimulus(rec)
	if err != nil {
		log.Fatal(err)
	}
	model := energy.NewModel(stim)
	red, err := model.PipelineReduction(b9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("end-to-end processing-energy reduction: %.2fx\n", red)
}
