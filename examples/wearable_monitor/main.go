// Wearable monitor: a realistic edge-device scenario. A battery-powered
// ECG patch streams samples through the approximate QRS detector, computes
// live heart rate from detected beats, and reports the battery-life
// extension the approximation buys — the deployment the paper's
// introduction motivates.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func main() {
	// A patient with mild tachycardia and a noisy electrode contact.
	cfg := ecg.DefaultConfig()
	cfg.HeartRate = 96
	cfg.Noise.MuscleMV = 0.05
	cfg.Noise.BaselineMV = 0.20
	cfg.Seed = 42
	rec, err := cfg.Generate("patient-007", 24000) // two minutes at 200 Hz
	if err != nil {
		log.Fatal(err)
	}

	// The deployed design: the paper's B9 (zero accuracy loss, maximum
	// energy savings).
	var b9 pantompkins.Config
	for i, st := range pantompkins.Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[st] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	pipe, err := pantompkins.New(b9)
	if err != nil {
		log.Fatal(err)
	}
	res := pipe.Process(rec)
	peaks := res.Detection.Peaks

	fmt.Printf("wearable ECG patch, patient-007: %.0f s of signal\n", rec.DurationSec())
	fmt.Printf("beats detected: %d (reference %d)\n", len(peaks), len(rec.Annotations))

	// Live heart rate over 10-second windows from detected R-R intervals.
	fmt.Println("\nheart-rate trend (10 s windows):")
	window := 10 * rec.FS
	for start := 0; start+window <= len(rec.Samples); start += window {
		var rrSum, rrN int
		prev := -1
		for _, p := range peaks {
			if p < start || p >= start+window {
				continue
			}
			if prev >= 0 {
				rrSum += p - prev
				rrN++
			}
			prev = p
		}
		if rrN == 0 {
			continue
		}
		bpm := 60.0 * float64(rec.FS) * float64(rrN) / float64(rrSum)
		fmt.Printf("  t=%3d s: %5.1f bpm\n", start/rec.FS, bpm)
	}

	// Battery life: processing is 40-60% of the node's energy (paper
	// Fig 1); scale the ECG node's budget by the measured reduction.
	stim, err := energy.NewStimulus(rec)
	if err != nil {
		log.Fatal(err)
	}
	model := energy.NewModel(stim)
	red, err := model.PipelineReduction(b9)
	if err != nil {
		log.Fatal(err)
	}
	var node energy.SensorNode
	for _, n := range energy.SensorNodes() {
		if n.Name == "ECG" {
			node = n
		}
	}
	before := node.TotalJPerDay
	after := before - node.ProcessingJPerDay()*(1-1/red)
	fmt.Printf("\nprocessing-energy reduction: %.2fx\n", red)
	fmt.Printf("node energy: %.1f J/day -> %.1f J/day (battery life x%.2f)\n",
		before, after, before/after)
}
