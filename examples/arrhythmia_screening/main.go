// Arrhythmia screening: the paper's future-work direction implemented on
// top of the approximate pipeline. A recording with premature ventricular
// beats is processed by the B9 approximate design; RR-interval analysis on
// the detected beats flags the ectopics and reports HRV statistics —
// showing that downstream diagnostics survive aggressive approximation.
package main

import (
	"fmt"
	"log"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arrhythmia"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func main() {
	// A recording where ~8% of beats are premature ventricular ectopics.
	cfg := ecg.DefaultConfig()
	cfg.EctopicRate = 0.08
	cfg.Seed = 11
	rec, err := cfg.Generate("pvc-screening", 36000) // three minutes
	if err != nil {
		log.Fatal(err)
	}
	trueEctopics := 0
	for _, e := range rec.Ectopic {
		if e {
			trueEctopics++
		}
	}
	fmt.Printf("recording: %.0f s, %d beats, %d ectopic\n",
		rec.DurationSec(), len(rec.Annotations), trueEctopics)

	// Detect beats with the approximate B9 design.
	var b9 pantompkins.Config
	for i, s := range pantompkins.Stages {
		b9.Stage[s] = dsp.ArithConfig{LSBs: []int{10, 12, 2, 8, 16}[i], Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	p, err := pantompkins.New(b9)
	if err != nil {
		log.Fatal(err)
	}
	det := p.Process(rec).Detection
	m, err := metrics.MatchPeaks(rec.Annotations, det.Peaks, core.DefaultPeakTolerance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B9 approximate detection: %d beats, accuracy %.2f%%\n",
		len(det.Peaks), 100*m.Sensitivity())

	// Rhythm analysis over the detected beats.
	rep, err := arrhythmia.Analyze(det.Peaks, rec.FS, arrhythmia.Thresholds{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrhythm report:\n")
	fmt.Printf("  mean rate %.1f bpm, SDNN %.1f ms, RMSSD %.1f ms\n", rep.MeanBPM, rep.SDNN, rep.RMSSD)
	fmt.Printf("  premature beats flagged: %d (ground truth %d)\n",
		rep.Count(arrhythmia.PrematureBeat), trueEctopics)
	fmt.Printf("  pauses flagged: %d (compensatory pauses follow each ectopic)\n",
		rep.Count(arrhythmia.Pause))
	for _, f := range rep.Findings {
		if f.Kind == arrhythmia.PrematureBeat {
			fmt.Printf("    premature beat near t=%.1f s\n", float64(f.Index)/float64(rec.FS))
		}
	}
}
