# Developer and CI entry points. `make ci` is the gate: build, vet,
# race-clean tests (which include the kernel-vs-reference equivalence
# suite), the same equivalence suite with the word-parallel kernels
# force-disabled (the bit-serial oracle path, including the scalar
# activity simulator), benchmark smoke passes in both modes, focused
# -race passes over the two global caches' concurrent cold builds, the
# multi-patient streaming service, the sharded gateway, the real-socket
# transport (loopback TCP+UDP churn), the batch-vs-scalar equivalence
# suites and the artifact store (crash-point sweep, child-process kill
# harness, fault soak, store-vs-fresh bit identity), a fuzz smoke over
# the wire-frame/socket-message parsers and the store codecs, a
# fixed-seed chaos run of the socket transport harness, and a benchdiff
# smoke run over the checked-in snapshot.

GO ?= go

# Benchmarks captured by `make bench-json` into BENCH_N.json snapshots.
BENCH_JSON_PATTERN = KernelVsReference|PipelinePush|DSEWorkers|EvaluatorShards|Fig11ExplorationTime|Table2PreprocessingGrid|EnergyCharacterization|Activity|Serve|Gateway|Transport|BatchChain|StoreColdWarm
# Packages the bench-json pattern runs over.
BENCH_JSON_PKGS = . ./internal/arith/kernel ./internal/netlist
# Current snapshot file; bump per PR so the trajectory stays diffable.
BENCH_SNAPSHOT = BENCH_10.json
# Previous snapshot `make bench-diff` gates against.
BENCH_BASELINE = BENCH_9.json
# Benchmarks that must exist in the current snapshot (catches a pattern
# or harness regression silently dropping the new energy benchmarks).
BENCH_REQUIRE = EnergyCharacterization/cold|Table2PreprocessingGrid/scratch|Activity/lanes|Serve/sessions|Serve/sessions-scalar|Serve/latency|Gateway/shards=1|Gateway/shards=4|Transport/inproc|Transport/tcp|Transport/udp|BatchChain/ama5-k16/batch64|BatchChain/ama5-k16/scalar|StoreColdWarm/fromzero|StoreColdWarm/warmstore

.PHONY: all build vet test race race-arith race-energy race-serve race-gateway race-net race-batch race-store fuzz-smoke net-smoke test-reference bench bench-reference bench-json bench-diff bench-diff-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused -race pass over the arithmetic packages: the kernel's global
# plan/table cache is hammered by concurrent cold builds (first-insert-wins
# asserted), cheap enough to run on every CI pass in addition to the full
# `race` sweep above.
race-arith:
	$(GO) test -race -count=1 ./internal/arith/...

# Same treatment for the energy characterization cache: concurrent cold
# characterizations of one (stage, config) set must share first-inserted
# entries.
race-energy:
	$(GO) test -race -count=1 ./internal/energy

# The multi-patient streaming service under -race: concurrent Service
# shards (one per goroutine, as deployed) over the shared kernel and
# energy caches, plus the bit-identity/churn/eviction suite.
race-serve:
	$(GO) test -race -count=1 ./internal/serve

# The sharded gateway under -race: per-shard drain workers against the
# merge path, the fault-injected transport loop, and the shard-count
# bit-identity suite.
race-gateway:
	$(GO) test -race -count=1 -run 'Gateway|Transport|Fault|Gap|SplitFrames' ./internal/serve

# The socket transport under -race: loopback TCP+UDP connection churn —
# reconnect chaos, NACK settlement, idle reaping, overload shedding,
# panic isolation and graceful drain — plus the experiments-level
# identity gate and chaos sweep over live sockets.
race-net:
	$(GO) test -race -count=1 -run 'Net|Wire|SeqWrap' ./internal/serve
	$(GO) test -race -count=1 -run 'TransportResilience' ./internal/experiments

# Fixed-seed chaos smoke of the socket harness through the CLI: identity
# gate on both networks plus the loss x policy sweep with disconnects
# and partial writes over a real loopback socket.
net-smoke:
	$(GO) run ./cmd/xbiosip -samples 6000 -seed 3 transport > /dev/null
	$(GO) run ./cmd/xbiosip -samples 6000 -net udp -sessions 4 serve > /dev/null

# The batch-evaluation equivalence suites across every layer that grew a
# batched path — kernel BatchChain, dsp block hooks, PipelineBatch, the
# batched serve drain and the netlist stream simulator — under -race,
# with the per-sample/scalar paths as in-process oracles.
race-batch:
	$(GO) test -race -count=1 -run 'Batch|Streams|Discard' ./internal/arith/kernel ./internal/dsp ./internal/pantompkins ./internal/serve ./internal/netlist

# The artifact store under -race: concurrent cross-handle publishers
# (first-insert-wins through the lockfile), the in-process crash-point
# sweep, the child-process kill harness (TestStoreCrashRecovery spawns
# and SIGKILLs real publishers mid-publish), the fault soak, and the
# store-backed table/characterization identity suites in the two
# consuming caches.
race-store:
	$(GO) test -race -count=1 ./internal/store
	$(GO) test -race -count=1 -run 'Store|DropCachesDetaches' ./internal/arith/kernel ./internal/energy
	$(GO) test -race -count=1 -run 'StoreRegimes' ./internal/experiments

# Fuzz smoke: a few seconds of native fuzzing over the wire-frame
# parser, the socket-message decoder, the ingest path (never panic,
# never corrupt the session pool) and the artifact-store blob/index/
# payload codecs (never panic, never accept a non-canonical encoding —
# no checksum false positives).
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseFrame -fuzztime=5s -run '^$$' ./internal/serve
	$(GO) test -fuzz=FuzzParseWire -fuzztime=5s -run '^$$' ./internal/serve
	$(GO) test -fuzz=FuzzIngest -fuzztime=5s -run '^$$' ./internal/serve
	$(GO) test -fuzz=FuzzStoreBlob -fuzztime=5s -run '^$$' ./internal/store
	$(GO) test -fuzz=FuzzStoreIndex -fuzztime=5s -run '^$$' ./internal/store
	$(GO) test -fuzz=FuzzStoreCodec -fuzztime=5s -run '^$$' ./internal/store

# The kernel equivalence tests and the packages threaded through the
# compiled kernels, re-run with XBIOSIP_NO_KERNELS so every plan delegates
# to the bit-serial reference models and the activity engine to the scalar
# oracle: keeps both oracle paths green.
test-reference:
	XBIOSIP_NO_KERNELS=1 $(GO) test -count=1 -race ./internal/arith/kernel ./internal/dsp ./internal/pantompkins ./internal/netlist ./internal/energy
	XBIOSIP_NO_KERNELS=1 $(GO) test -count=1 -race -run 'Batch|Discard' ./internal/serve

# One iteration of every benchmark: regenerates each table/figure once and
# exercises the parallel DSE engine and the kernel-vs-reference
# micro-benchmarks without taking benchmark-grade time.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/arith/kernel ./internal/netlist

# The kernel-sensitive benchmarks with kernels force-disabled — a smoke
# pass proving the oracle path still drives the full simulation stack.
bench-reference:
	XBIOSIP_NO_KERNELS=1 $(GO) test -bench '(KernelVsReference|PipelinePush|Activity)' -benchmem -benchtime=1x -run '^$$' . ./internal/arith/kernel ./internal/netlist

# Record the performance trajectory: run the DSE/pipeline/kernel/energy
# benchmarks at full benchtime and snapshot name -> ns/op (+allocs) JSON,
# so future PRs can diff against the checked-in snapshots.
bench-json:
	$(GO) test -bench '($(BENCH_JSON_PATTERN))' -benchmem -run '^$$' $(BENCH_JSON_PKGS) > bench.out.tmp
	$(GO) run ./cmd/benchjson < bench.out.tmp > $(BENCH_SNAPSHOT)
	rm -f bench.out.tmp

# Compare the current snapshot against the previous one and fail on >15%
# regression of any tracked benchmark's ns/op, bytes/op or allocs/op, or
# if a required benchmark is missing from the current snapshot.
# Snapshots are only comparable when taken on the same machine — run
# `make bench-json` against both revisions locally before trusting a
# failure.
bench-diff:
	$(GO) run ./cmd/benchdiff -threshold 0.15 -bytes-threshold 0.15 -allocs-threshold 0.15 -require '$(BENCH_REQUIRE)' $(BENCH_BASELINE) $(BENCH_SNAPSHOT)

# CI smoke: self-compare the checked-in snapshot so the tool's parsing,
# matching, gating and -require checks run on every CI pass without
# cross-machine noise.
bench-diff-smoke:
	$(GO) run ./cmd/benchdiff -threshold 0.15 -bytes-threshold 0.15 -allocs-threshold 0.15 -require '$(BENCH_REQUIRE)' $(BENCH_SNAPSHOT) $(BENCH_SNAPSHOT) > /dev/null

ci: build vet race race-arith race-energy race-serve race-gateway race-net race-batch race-store fuzz-smoke net-smoke test-reference bench bench-reference bench-diff-smoke
