# Developer and CI entry points. `make ci` is the gate: build, vet,
# race-clean tests, and a one-iteration benchmark smoke pass over the
# paper-reproduction harness.

GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: regenerates each table/figure once and
# exercises the parallel DSE engine without taking benchmark-grade time.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' .

ci: build vet race bench
