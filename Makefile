# Developer and CI entry points. `make ci` is the gate: build, vet,
# race-clean tests (which include the kernel-vs-reference equivalence
# suite), the same equivalence suite with the word-parallel kernels
# force-disabled (the bit-serial oracle path), benchmark smoke passes in
# both modes, and a benchdiff smoke run over the checked-in snapshot.

GO ?= go

# Benchmarks captured by `make bench-json` into BENCH_N.json snapshots.
BENCH_JSON_PATTERN = KernelVsReference|PipelinePush|DSEWorkers|EvaluatorShards|Fig11ExplorationTime|Table2PreprocessingGrid
# Current snapshot file; bump per PR so the trajectory stays diffable.
BENCH_SNAPSHOT = BENCH_4.json
# Previous snapshot `make bench-diff` gates against.
BENCH_BASELINE = BENCH_3.json

.PHONY: all build vet test race race-arith test-reference bench bench-reference bench-json bench-diff bench-diff-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused -race pass over the arithmetic packages: the kernel's global
# plan/table cache is hammered by concurrent cold builds (first-insert-wins
# asserted), cheap enough to run on every CI pass in addition to the full
# `race` sweep above.
race-arith:
	$(GO) test -race -count=1 ./internal/arith/...

# The kernel equivalence tests and the packages threaded through the
# compiled kernels, re-run with XBIOSIP_NO_KERNELS so every plan delegates
# to the bit-serial reference models: keeps the oracle path green.
test-reference:
	XBIOSIP_NO_KERNELS=1 $(GO) test -count=1 -race ./internal/arith/kernel ./internal/dsp ./internal/pantompkins

# One iteration of every benchmark: regenerates each table/figure once and
# exercises the parallel DSE engine and the kernel-vs-reference
# micro-benchmarks without taking benchmark-grade time.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/arith/kernel

# The kernel-sensitive benchmarks with kernels force-disabled — a smoke
# pass proving the oracle path still drives the full simulation stack.
bench-reference:
	XBIOSIP_NO_KERNELS=1 $(GO) test -bench '(KernelVsReference|PipelinePush)' -benchmem -benchtime=1x -run '^$$' . ./internal/arith/kernel

# Record the performance trajectory: run the DSE/pipeline/kernel
# benchmarks at full benchtime and snapshot name -> ns/op (+allocs) JSON,
# so future PRs can diff against the checked-in snapshots.
bench-json:
	$(GO) test -bench '($(BENCH_JSON_PATTERN))' -benchmem -run '^$$' . ./internal/arith/kernel > bench.out.tmp
	$(GO) run ./cmd/benchjson < bench.out.tmp > $(BENCH_SNAPSHOT)
	rm -f bench.out.tmp

# Compare the current snapshot against the previous one and fail on >15%
# regression of any tracked benchmark's ns/op, bytes/op or allocs/op.
# Snapshots are only comparable when taken on the same machine — run
# `make bench-json` against both revisions locally before trusting a
# failure.
bench-diff:
	$(GO) run ./cmd/benchdiff -threshold 0.15 -bytes-threshold 0.15 -allocs-threshold 0.15 $(BENCH_BASELINE) $(BENCH_SNAPSHOT)

# CI smoke: self-compare the checked-in snapshot so the tool's parsing,
# matching and gating run on every CI pass without cross-machine noise.
bench-diff-smoke:
	$(GO) run ./cmd/benchdiff -threshold 0.15 -bytes-threshold 0.15 -allocs-threshold 0.15 $(BENCH_SNAPSHOT) $(BENCH_SNAPSHOT) > /dev/null

ci: build vet race race-arith test-reference bench bench-reference bench-diff-smoke
