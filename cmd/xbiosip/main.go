// Command xbiosip regenerates the paper's tables and figures and runs the
// full XBioSiP methodology from the command line.
//
// Usage:
//
//	xbiosip [flags] <experiment>
//
// Experiments: table1, table2, fig1, fig2, fig8, fig10, fig11, fig12,
// fig13, ablation, noise, stream, serve, delivery, transport, dse,
// synth, all.
//
// Flags -records and -samples control the synthetic NSRDB-like evaluation
// set (the paper's unit is one 20,000-sample recording). -workers sets the
// design-evaluation pool size and -shards the record-shard split of one
// design evaluation (see package sched); every table, figure and generated
// design is bit-identical for all -workers/-shards settings.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/experiments"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
	"github.com/xbiosip/xbiosip/internal/store"
	"github.com/xbiosip/xbiosip/internal/synth"
)

func main() {
	records := flag.Int("records", 1, "number of NSRDB-like records to evaluate on (1..18)")
	samples := flag.Int("samples", 20000, "samples per record (paper: 20000 = 100 s at 200 Hz)")
	psnr := flag.Float64("psnr", 15, "signal-quality constraint for the pre-processing gate (dB)")
	accuracy := flag.Float64("accuracy", 1.0, "final peak-detection-accuracy constraint [0,1]")
	workers := flag.Int("workers", 0, "design-evaluation workers (0 = all CPUs, 1 = sequential; results are identical)")
	shards := flag.Int("shards", 0, "record shards per design evaluation (0 = one per record, 1 = sequential records; results are identical)")
	sessions := flag.Int("sessions", 64, "concurrent patient sessions for the serve experiment")
	gwShards := flag.Int("gwshards", 1, "gateway shards for the serve experiment (one Service per core)")
	loss := flag.Float64("loss", 0, "injected packet-loss probability for serve/delivery (0 = perfect links)")
	burst := flag.Float64("burst", 0, "injected burst-dropout entry probability for serve/delivery")
	seed := flag.Uint64("seed", 1, "fault-injection seed; serve/delivery runs are reproducible from it")
	policy := flag.String("policy", "hold", "gap-concealment policy for serve under faults (drop|hold|zero|restart)")
	noBatch := flag.Bool("nobatch", false, "drain serve sessions one sample at a time (scalar oracle) instead of lane-packed batch rounds")
	netw := flag.String("net", "", "run serve/transport over a real socket: tcp or udp (empty = in-process transport)")
	addr := flag.String("addr", "", "listen address for -net (default loopback with an ephemeral port)")
	verbose := flag.Bool("v", false, "report kernel working-set statistics (per-design table footprint, global table cache)")
	storeDir := flag.String("store", os.Getenv("XBIOSIP_STORE"),
		"persistent artifact store directory for kernel tables and energy characterizations (default $XBIOSIP_STORE; empty = disabled)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	artifacts := attachArtifactStore(*storeDir)
	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbiosip:", err)
		os.Exit(2)
	}
	if *netw != "" && *netw != "tcp" && *netw != "udp" {
		fmt.Fprintf(os.Stderr, "xbiosip: -net %q: want tcp or udp\n", *netw)
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *records, *samples, *psnr, *accuracy, *workers, *shards, *verbose, experiments.ServeOpts{
		Sessions: *sessions, Shards: *gwShards, Loss: *loss, Burst: *burst, Seed: *seed, Policy: pol,
		NoBatch: *noBatch, Net: *netw, Addr: *addr,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "xbiosip:", err)
		os.Exit(1)
	}
	if *verbose {
		printKernelStats()
		printStoreStats(artifacts)
	}
}

// attachArtifactStore opens the persistent artifact store at dir and
// binds it to the kernel and energy caches. Every failure degrades:
// an unusable root is a warning on stderr and an in-memory-only run,
// never a refusal to start.
func attachArtifactStore(dir string) *store.Store {
	if dir == "" {
		return nil
	}
	s, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xbiosip: artifact store %s unusable (%v); continuing in-memory only\n", dir, err)
		return nil
	}
	kernel.AttachStore(s)
	energy.AttachStore(s)
	return s
}

// printStoreStats reports the artifact store's traffic next to the
// cache statistics: hits/misses mirror the in-memory counters, corrupt
// counts quarantined blobs, degraded counts I/O demotions to the
// in-memory path.
func printStoreStats(s *store.Store) {
	if s == nil {
		return
	}
	st := s.Stats()
	fmt.Printf("artifact store: %d entries, %.1f KiB at %s; %d hits, %d misses, %d puts, %d corrupt, %d degraded\n",
		st.Entries, float64(st.Bytes)/1024, s.Root(), st.Hits, st.Misses, st.Puts, st.Corrupt, st.Degraded)
}

// parsePolicy maps the -policy flag to a serve.GapPolicy.
func parsePolicy(s string) (serve.GapPolicy, error) {
	for p := serve.GapDrop; p <= serve.GapRestart; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown gap policy %q (drop|hold|zero|restart)", s)
}

// printKernelStats reports the simulator's kernel working set — the live
// plan/table cache and the energy characterization cache — tiered the way
// future PRs should track it (like ns/op, but bytes).
func printKernelStats() {
	st := kernel.CacheStats()
	fmt.Printf("kernel cache: %d adder plans, %d multiplier plans, %d const-mul tables, %d square tables, %d chain projections\n",
		st.Adders, st.Multipliers, st.ConstTables, st.SquareTables, st.ChainProjs)
	fmt.Printf("kernel tables: %.1f KiB live (%.1f KiB sub-product, %.1f KiB full, %.1f KiB chain projections)\n",
		float64(st.TableBytes)/1024, float64(st.SubProductBytes)/1024,
		float64(st.FullTableBytes)/1024, float64(st.ChainProjBytes)/1024)
	est := energy.CacheStats()
	fmt.Printf("energy characterizations: %d cached (stage, config) pairs, %d netlist cells, %.1f KiB activity; %d hits, %d builds\n",
		est.Entries, est.Cells, float64(est.ActivityBytes)/1024, est.Hits, est.Misses)
}

// designFootprint prints one design's live kernel table bytes.
func designFootprint(label string, cfg pantompkins.Config) {
	p, err := pantompkins.New(cfg)
	if err != nil {
		return
	}
	fmt.Printf("  kernel tables (%s): %.1f KiB for %v\n", label, float64(p.KernelTableBytes())/1024, cfg)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: xbiosip [flags] <experiment>

experiments:
  table1   elementary approximate module library characterisation
  table2   pre-processing design grid (exhaustive 81 + Algorithm 1)
  fig1     sensor-node energy breakdown
  fig2     LPF error-resilience sweep
  fig8     HPF/DER/SQR/MWI error-resilience sweeps
  fig10    uniform 4-LSB output-quality comparison
  fig11    exploration-time comparison
  fig12    energy-quality of configurations A1, A2, B1-B14
  fig13    heartbeat misclassification analysis of B10
  ablation stage energy under the three accounting policies
  noise    detection accuracy vs EMG noise, accurate vs B9
  stream   push every record through the B9 detector sample by sample
  serve    multiplex -sessions framed patient streams through the
           -gwshards-sharded gateway (B9), reporting live sessions/core;
           -loss/-burst/-seed inject reproducible delivery faults
  delivery sweep packet loss against recovered detection for every
           gap-concealment policy (drop/hold/zero/restart)
  transport gate the gateway over real loopback sockets (-net tcp|udp,
           -addr): fault-free event bit-identity vs the in-process
           transport, then the loss x policy sweep with chaos
           disconnects and partial writes on the live socket
  dse      run the full two-gate XBioSiP methodology
  synth    synthesis reports of the five accurate stage netlists
  all      everything above

flags:
`)
	flag.PrintDefaults()
}

func run(what string, records, samples int, psnr, accuracy float64, workers, shards int, verbose bool, serveOpts experiments.ServeOpts) error {
	// Experiments that need no evaluation environment.
	switch what {
	case "table1":
		fmt.Print(experiments.Table1())
		return nil
	case "fig1":
		fmt.Print(experiments.Fig1())
		return nil
	case "synth":
		return synthReports()
	}

	s, err := experiments.NewSetupOpts(records, samples, core.EvalOptions{Workers: workers, RecordShards: shards})
	if err != nil {
		return err
	}
	all := what == "all"
	if all {
		fmt.Print(experiments.Table1(), "\n", experiments.Fig1(), "\n")
		if err := synthReports(); err != nil {
			return err
		}
	}
	if all || what == "fig2" {
		rows, err := s.StageResilience(pantompkins.LPF)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatResilience(pantompkins.LPF, rows), "\n")
	}
	if all || what == "fig8" {
		for _, st := range []pantompkins.Stage{pantompkins.HPF, pantompkins.DER, pantompkins.SQR, pantompkins.MWI} {
			rows, err := s.StageResilience(st)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatResilience(st, rows), "\n")
		}
	}
	if all || what == "fig10" {
		r, err := s.UniformApproximation(4)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatUniform(r), "\n")
	}
	if all || what == "table2" {
		r, err := s.Table2(psnr)
		if err != nil {
			return err
		}
		fmt.Print(s.FormatTable2(r), "\n")
	}
	if all || what == "fig11" {
		rows, err := s.ExplorationTime()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig11(rows), "\n")
	}
	if all || what == "fig12" {
		rows, err := s.Fig12()
		if err != nil {
			return err
		}
		out, err := s.FormatFig12(rows)
		if err != nil {
			return err
		}
		fmt.Print(out, "\n")
	}
	if all || what == "fig13" {
		r, err := s.Misclassification(experiments.Fig12Configs[10])
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatMisclassification(r), "\n")
	}
	if all || what == "ablation" {
		rows, err := s.EnergyAccountingAblation()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation(rows), "\n")
	}
	if all || what == "noise" {
		rows, err := s.NoiseRobustness([]float64{0.02, 0.05, 0.10, 0.20}, samples)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatNoiseRobustness(rows), "\n")
	}
	if all || what == "stream" {
		b9 := experiments.Fig12Configs[9]
		if b9.Name != "B9" {
			return fmt.Errorf("config table changed: %s", b9.Name)
		}
		rows, err := s.Streaming(s.Config(b9.LSBs))
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatStreaming(s.Config(b9.LSBs), rows), "\n")
	}
	if all || what == "serve" {
		b9 := experiments.Fig12Configs[9]
		if b9.Name != "B9" {
			return fmt.Errorf("config table changed: %s", b9.Name)
		}
		r, err := s.Serve(s.Config(b9.LSBs), serveOpts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatServe(s.Config(b9.LSBs), r), "\n")
	}
	if all || what == "delivery" {
		b9 := experiments.Fig12Configs[9]
		if b9.Name != "B9" {
			return fmt.Errorf("config table changed: %s", b9.Name)
		}
		// -loss caps the sweep when set; the default sweep otherwise.
		var losses []float64
		if l := serveOpts.Loss; l > 0 {
			losses = []float64{0, l / 4, l / 2, l}
		}
		rows, err := s.DeliveryResilience(s.Config(b9.LSBs), losses, serveOpts.Burst, serveOpts.Seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatDeliveryResilience(rows), "\n")
	}
	if all || what == "transport" {
		b9 := experiments.Fig12Configs[9]
		if b9.Name != "B9" {
			return fmt.Errorf("config table changed: %s", b9.Name)
		}
		// -loss caps the sweep when set; the default sweep otherwise.
		var losses []float64
		if l := serveOpts.Loss; l > 0 {
			losses = []float64{0, l / 2, l}
		}
		r, err := s.TransportResilience(s.Config(b9.LSBs), experiments.TransportOpts{
			Network: serveOpts.Net, Addr: serveOpts.Addr,
			Losses: losses, Seed: serveOpts.Seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTransportResilience(r), "\n")
	}
	if all || what == "dse" {
		return runMethodology(s, psnr, accuracy, verbose)
	}
	switch what {
	case "all", "fig2", "fig8", "fig10", "table2", "fig11", "fig12", "fig13", "ablation", "noise", "stream", "serve", "delivery", "transport", "dse":
		return nil
	}
	return fmt.Errorf("unknown experiment %q (run without arguments for usage)", what)
}

func runMethodology(s *experiments.Setup, psnr, accuracy float64, verbose bool) error {
	m := core.NewMethodology(s.Eval, s.Energy)
	m.SignalConstraint = psnr
	m.FinalConstraint = accuracy
	m.Workers = s.Workers
	d, err := m.Run()
	if err != nil {
		return err
	}
	fmt.Printf("XBioSiP methodology result (PSNR >= %.1f dB, accuracy >= %.2f%%)\n", psnr, 100*accuracy)
	fmt.Printf("  pre-processing unit:   %v (%d evaluations)\n", d.PreConfig, d.PreEvaluations)
	fmt.Printf("  final processor:       %v (%d evaluations)\n", d.Config, d.ProcEvaluations)
	fmt.Printf("  peak accuracy %.2f%%, PSNR %.2f dB, SSIM %.3f\n",
		100*d.Quality.PeakAccuracy, d.Quality.PSNR, d.Quality.SSIM)
	fmt.Printf("  end-to-end energy reduction: %.2fx\n", d.EnergyReduction)
	st := s.Eval.CacheStats()
	fmt.Printf("  evaluation engine: %d workers, %d pipeline simulations, %d cache hits\n",
		m.Workers, st.Misses, st.Hits)
	if verbose {
		designFootprint("accurate", pantompkins.AccurateConfig())
		designFootprint("pre-processing unit", d.PreConfig)
		designFootprint("final design", d.Config)
	}
	return nil
}

func synthReports() error {
	for _, st := range pantompkins.Stages {
		n, err := pantompkins.StageNetlist(st, dsp.Accurate())
		if err != nil {
			return err
		}
		r, err := synth.AnalyzeOptimized(n, nil)
		if err != nil {
			return err
		}
		fmt.Print(synth.FormatReport(r))
	}
	return nil
}
