// Command ptqrs runs the Pan-Tompkins QRS detector over an ECG record —
// either a generated NSRDB-like record or a CSV file written by
// cmd/ecggen — under a configurable approximation, and reports detection
// statistics.
//
// Usage:
//
//	ptqrs [-record N | -in file.csv] [-lsbs LPF,HPF,DER,SQR,MWI] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func main() {
	recordNum := flag.Int("record", 0, "NSRDB-like record number (0..17)")
	samples := flag.Int("samples", 20000, "samples to generate")
	inFile := flag.String("in", "", "read record from CSV instead of generating")
	lsbs := flag.String("lsbs", "0,0,0,0,0", "approximated LSBs per stage: LPF,HPF,DER,SQR,MWI")
	adder := flag.String("adder", "ApproxAdd5", "approximate adder kind")
	mult := flag.String("mult", "AppMultV1", "approximate multiplier kind")
	verbose := flag.Bool("v", false, "print the detector decision trace")
	flag.Parse()

	if err := run(*recordNum, *samples, *inFile, *lsbs, *adder, *mult, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "ptqrs:", err)
		os.Exit(1)
	}
}

func run(recordNum, samples int, inFile, lsbs, adder, mult string, verbose bool) error {
	var rec *ecg.Record
	var err error
	if inFile != "" {
		f, err := os.Open(inFile)
		if err != nil {
			return err
		}
		defer f.Close()
		rec, err = ecg.ReadCSV(f)
		if err != nil {
			return err
		}
	} else {
		rec, err = ecg.NSRDBRecord(recordNum, samples)
		if err != nil {
			return err
		}
	}

	ak, err := approx.ParseAdderKind(adder)
	if err != nil {
		return err
	}
	mk, err := approx.ParseMultKind(mult)
	if err != nil {
		return err
	}
	parts := strings.Split(lsbs, ",")
	if len(parts) != pantompkins.NumStages {
		return fmt.Errorf("-lsbs wants %d comma-separated values", pantompkins.NumStages)
	}
	var cfg pantompkins.Config
	for i, st := range pantompkins.Stages {
		k, err := strconv.Atoi(strings.TrimSpace(parts[i]))
		if err != nil {
			return fmt.Errorf("-lsbs %v: %w", st, err)
		}
		if k > 0 {
			cfg.Stage[st] = dsp.ArithConfig{LSBs: k, Add: ak, Mul: mk}
		}
	}

	p, err := pantompkins.New(cfg)
	if err != nil {
		return err
	}
	res := p.Process(rec)
	fmt.Printf("record %s: %d samples at %d Hz, %d annotated beats\n",
		rec.Name, len(rec.Samples), rec.FS, len(rec.Annotations))
	fmt.Printf("configuration: %v (%v, %v)\n", cfg, ak, mk)
	fmt.Printf("detected %d QRS peaks\n", len(res.Detection.Peaks))
	if len(rec.Annotations) > 0 {
		m, err := metrics.MatchPeaks(rec.Annotations, res.Detection.Peaks, core.DefaultPeakTolerance)
		if err != nil {
			return err
		}
		fmt.Printf("accuracy %.2f%% (TP %d, FP %d, FN %d), PPV %.2f%%, F1 %.3f\n",
			100*m.Sensitivity(), m.TruePositives, m.FalsePositives, m.FalseNegatives,
			100*m.PPV(), m.F1())
	}
	if verbose {
		for _, e := range res.Detection.Events {
			fmt.Printf("  %-11s mwi=%6d filtered=%6d value=%d\n", e.Kind, e.Index, e.Filtered, e.Value)
		}
	}
	return nil
}
