// Command benchjson converts `go test -bench` output on stdin into a JSON
// map keyed by benchmark name, so the repo can check in machine-diffable
// performance snapshots (BENCH_N.json) and future changes can be compared
// against them:
//
//	go test -bench . -benchmem -run '^$' ./... | go run ./cmd/benchjson > BENCH_2.json
//
// The GOMAXPROCS suffix (-8) is stripped from names; ns/op is always
// emitted, bytes/allocs per op when -benchmem was on.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Result is one benchmark's measurements.
type Result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	bytesOp   = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsOp  = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

func main() {
	results := make(map[string]Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := Result{NsPerOp: ns}
		if bm := bytesOp.FindStringSubmatch(m[3]); bm != nil {
			if v, err := strconv.ParseFloat(bm[1], 64); err == nil {
				r.BytesPerOp = &v
			}
		}
		if am := allocsOp.FindStringSubmatch(m[3]); am != nil {
			if v, err := strconv.ParseFloat(am[1], 64); err == nil {
				r.AllocsPerOp = &v
			}
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
