// Command benchdiff compares two benchmark snapshots produced by
// cmd/benchjson (the checked-in BENCH_N.json files) and fails when any
// benchmark regressed beyond a threshold:
//
//	go run ./cmd/benchdiff [-threshold 0.15] [-bytes-threshold 0.15]
//	    [-allocs-threshold 0.15] [-match regex] [-require regex]
//	    old.json new.json
//
// Every benchmark present in both snapshots (and matching -match, if
// given) is compared by ns/op, bytes/op and allocs/op; a regression
// larger than the corresponding threshold fraction exits 1 with the
// offenders listed, so `make bench-diff` can gate a change against the
// previous snapshot. The memory metrics are gated only when both
// snapshots recorded them, and small absolute drifts (64 B, 2 allocs) are
// ignored so near-zero baselines cannot trip the relative gate.
// Benchmarks present in only one snapshot are reported but never fail the
// run (suites grow) — except that every alternative of the -require
// regex (split on |) must match at least one benchmark in the NEW
// snapshot, so a newly added benchmark family cannot silently fall out
// of the recorded set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// result mirrors cmd/benchjson's per-benchmark schema.
type result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Minimum absolute growth before the relative memory gates apply: a
// benchmark going from 8 to 16 bytes/op is noise, not a regression.
const (
	minBytesDelta  = 64
	minAllocsDelta = 2
)

func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]result
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return m, nil
}

// regress reports the relative growth of new over old and whether it
// breaches the threshold, requiring the absolute growth to exceed
// minDelta (0 disables the floor).
func regress(old, new, threshold, minDelta float64) (float64, bool) {
	if old <= 0 {
		return 0, false
	}
	delta := (new - old) / old
	return delta, delta > threshold && new-old > minDelta
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated ns/op regression as a fraction (0.15 = +15%)")
	bytesThreshold := flag.Float64("bytes-threshold", 0.15, "maximum tolerated bytes/op regression as a fraction")
	allocsThreshold := flag.Float64("allocs-threshold", 0.15, "maximum tolerated allocs/op regression as a fraction")
	match := flag.String("match", "", "only compare benchmarks whose name matches this regexp (default: all)")
	require := flag.String("require", "", "|-separated regexps that must each match a benchmark in the new snapshot")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold f] [-bytes-threshold f] [-allocs-threshold f] [-match regex] [-require regex] old.json new.json")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	re := regexp.MustCompile("")
	if *match != "" {
		var err error
		if re, err = regexp.Compile(*match); err != nil {
			fail(err)
		}
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldR, err := load(oldPath)
	if err != nil {
		fail(err)
	}
	newR, err := load(newPath)
	if err != nil {
		fail(err)
	}

	names := make([]string, 0, len(oldR))
	for name := range oldR {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	compared := 0
	fmt.Printf("benchdiff %s -> %s (thresholds ns +%.0f%%, bytes +%.0f%%, allocs +%.0f%%)\n",
		oldPath, newPath, 100**threshold, 100**bytesThreshold, 100**allocsThreshold)
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		o := oldR[name]
		n, ok := newR[name]
		if !ok {
			fmt.Printf("  %-55s only in %s\n", name, oldPath)
			continue
		}
		compared++
		delta, bad := regress(o.NsPerOp, n.NsPerOp, *threshold, 0)
		mark := " "
		if bad {
			mark = "!"
			regressions = append(regressions, fmt.Sprintf("%s: %.4g -> %.4g ns/op (%+.1f%%)", name, o.NsPerOp, n.NsPerOp, 100*delta))
		}
		if o.BytesPerOp != nil && n.BytesPerOp != nil {
			if bd, bbad := regress(*o.BytesPerOp, *n.BytesPerOp, *bytesThreshold, minBytesDelta); bbad {
				mark = "!"
				regressions = append(regressions, fmt.Sprintf("%s: %.4g -> %.4g bytes/op (%+.1f%%)", name, *o.BytesPerOp, *n.BytesPerOp, 100*bd))
			}
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			if ad, abad := regress(*o.AllocsPerOp, *n.AllocsPerOp, *allocsThreshold, minAllocsDelta); abad {
				mark = "!"
				regressions = append(regressions, fmt.Sprintf("%s: %.4g -> %.4g allocs/op (%+.1f%%)", name, *o.AllocsPerOp, *n.AllocsPerOp, 100*ad))
			}
		}
		fmt.Printf("%s %-55s %12.4g %12.4g ns/op %+7.1f%%\n", mark, name, o.NsPerOp, n.NsPerOp, 100*delta)
	}
	for name := range newR {
		if re.MatchString(name) {
			if _, ok := oldR[name]; !ok {
				fmt.Printf("  %-55s only in %s\n", name, newPath)
			}
		}
	}
	if compared == 0 {
		fail(fmt.Errorf("no benchmarks in common between %s and %s (match %q)", oldPath, newPath, *match))
	}
	if *require != "" {
		for _, alt := range strings.Split(*require, "|") {
			altRe, err := regexp.Compile(alt)
			if err != nil {
				fail(err)
			}
			found := false
			for name := range newR {
				if altRe.MatchString(name) {
					found = true
					break
				}
			}
			if !found {
				fail(fmt.Errorf("required benchmark %q missing from %s", alt, newPath))
			}
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond their threshold:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Printf("%d benchmarks compared, none regressed beyond the thresholds\n", compared)
}
