// Command benchdiff compares two benchmark snapshots produced by
// cmd/benchjson (the checked-in BENCH_N.json files) and fails when any
// benchmark regressed beyond a threshold:
//
//	go run ./cmd/benchdiff [-threshold 0.15] [-match regex] old.json new.json
//
// Every benchmark present in both snapshots (and matching -match, if
// given) is compared by ns/op; a regression larger than the threshold
// fraction exits 1 with the offenders listed, so `make bench-diff` can
// gate a change against the previous snapshot. Benchmarks present in only
// one snapshot are reported but never fail the run (suites grow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// result mirrors cmd/benchjson's per-benchmark schema.
type result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]result
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return m, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated ns/op regression as a fraction (0.15 = +15%)")
	match := flag.String("match", "", "only compare benchmarks whose name matches this regexp (default: all)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold f] [-match regex] old.json new.json")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	re := regexp.MustCompile("")
	if *match != "" {
		var err error
		if re, err = regexp.Compile(*match); err != nil {
			fail(err)
		}
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldR, err := load(oldPath)
	if err != nil {
		fail(err)
	}
	newR, err := load(newPath)
	if err != nil {
		fail(err)
	}

	names := make([]string, 0, len(oldR))
	for name := range oldR {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	compared := 0
	fmt.Printf("benchdiff %s -> %s (threshold +%.0f%%)\n", oldPath, newPath, 100**threshold)
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		o := oldR[name]
		n, ok := newR[name]
		if !ok {
			fmt.Printf("  %-55s only in %s\n", name, oldPath)
			continue
		}
		compared++
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		mark := " "
		if delta > *threshold {
			mark = "!"
			regressions = append(regressions, fmt.Sprintf("%s: %.4g -> %.4g ns/op (%+.1f%%)", name, o.NsPerOp, n.NsPerOp, 100*delta))
		}
		fmt.Printf("%s %-55s %12.4g %12.4g ns/op %+7.1f%%\n", mark, name, o.NsPerOp, n.NsPerOp, 100*delta)
	}
	for name := range newR {
		if re.MatchString(name) {
			if _, ok := oldR[name]; !ok {
				fmt.Printf("  %-55s only in %s\n", name, newPath)
			}
		}
	}
	if compared == 0 {
		fail(fmt.Errorf("no benchmarks in common between %s and %s (match %q)", oldPath, newPath, *match))
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond +%.0f%%:\n", len(regressions), 100**threshold)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Printf("%d benchmarks compared, none regressed beyond +%.0f%%\n", compared, 100**threshold)
}
