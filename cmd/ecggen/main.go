// Command ecggen generates synthetic NSRDB-like ECG records (the
// repository's stand-in for PhysioNet data) and writes them as annotated
// CSV for external tools or for cmd/ptqrs -in.
//
// Usage:
//
//	ecggen -record 3 -samples 20000 -out record03.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/xbiosip/xbiosip/internal/ecg"
)

func main() {
	record := flag.Int("record", 0, "NSRDB-like record number (0..17)")
	samples := flag.Int("samples", 20000, "samples to generate (200 Hz)")
	out := flag.String("out", "", "output CSV path (default stdout)")
	flag.Parse()

	if err := run(*record, *samples, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ecggen:", err)
		os.Exit(1)
	}
}

func run(record, samples int, out string) error {
	rec, err := ecg.NSRDBRecord(record, samples)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ecg.WriteCSV(w, rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ecggen: wrote %s (%d samples, %d beats)\n", rec.Name, len(rec.Samples), len(rec.Annotations))
	return nil
}
